package warehouse

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/journal"
	"vmplants/internal/storage"
)

// The end-to-end integrity invariant: every byte a clone or resume
// reads was the byte publish wrote. Publish records a content checksum
// for every artifact — in the image descriptor's <integrity> section
// and in the storage volume's file namespace — and every read path
// verifies before trusting the state: clone opens verify once per
// cache fill (the hot path stays hot), the background scrubber deep-
// verifies everything else. A mismatch quarantines the image; the
// scrubber repairs from a replica or by re-materializing derived
// state, and retires what it cannot repair.

// integritySite is the fault-registry site label for warehouse-side
// storage faults; ops qualify the read path ("clone", "scrub") or the
// write path ("publish").
const integritySite = "warehouse"

// DefaultRepairAttempts is how many scrub passes may fail to repair a
// quarantined image before the scrubber gives up and retires it (when
// retirement is safe: derived and unreferenced).
const DefaultRepairAttempts = 3

// artifactSum is the content checksum of one state artifact. The
// simulation models file content as (path, size, disk content) rather
// than bytes, so the checksum digests exactly that; what matters is
// that publish and verify agree, and that a corruption fault's
// scramble never does.
func artifactSum(path string, size int64, content uint64) uint64 {
	h := fnv.New64a()
	io.WriteString(h, path)
	h.Write([]byte{0})
	fmt.Fprintf(h, "%d:%016x", size, content)
	return h.Sum64()
}

// scramble is the corruption transform applied to a recorded checksum.
// It is deliberately not an involution (unlike an XOR mask) so two
// corruptions of the same artifact cannot cancel out into a silently
// "clean" file.
func scramble(sum uint64) uint64 {
	out := sum*2654435761 + 0x9e3779b97f4a7c15
	if out == sum {
		out++
	}
	return out
}

// descriptorPath is where the image's XML descriptor lives.
func (im *Image) descriptorPath() string { return "golden/" + im.Name + "/descriptor.xml" }

// Epoch reports the image's integrity epoch: it advances every time
// the image's trustworthiness changes (corruption detected, repair
// completed). A CloneContext captures it at cache-fill time so clones
// in flight across a transition can be failed over instead of resumed
// from suspect state.
func (im *Image) Epoch() int64 { return im.epoch }

// stampSums fills im.Sums with the canonical checksum of every state
// artifact (descriptor excluded — it cannot record its own). Paths
// must already be stamped. A derived image's extents belong to its
// parent, so their recorded sums are copied from the parent's.
func (im *Image) stampSums(parent *Image) {
	im.Sums = make(map[string]uint64)
	im.Sums[im.ConfigPath] = artifactSum(im.ConfigPath, configBytes, 0)
	im.Sums[im.RedoPath] = artifactSum(im.RedoPath, im.Disk.RedoBytes(), im.Disk.ContentHash())
	if im.MemImagePath != "" {
		im.Sums[im.MemImagePath] = artifactSum(im.MemImagePath, im.MemImageBytes(), 0)
	}
	for i, p := range im.ExtentPaths {
		if parent != nil {
			im.Sums[p] = parent.Sums[p]
		} else {
			// Canonical store checksum: content-derived, so every image
			// referencing the same extent records the same sum under the
			// same path — which is what lets detect() poison by content.
			extent := im.Disk.Base().SizeBytes() / int64(DiskSpanFiles)
			im.Sums[p] = artifactSum(p, extent, im.Disk.Base().ExtentContentHash(i))
		}
	}
}

// sumPaths lists the image's checksummed artifact paths, sorted.
func (im *Image) sumPaths() []string {
	out := make([]string, 0, len(im.Sums))
	for p := range im.Sums {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// badArtifacts compares the volume's recorded checksums against the
// image's canonical ones and returns the mismatching paths, sorted. It
// is metadata-only — O(artifacts), no data movement — which is what
// lets the clone path verify without charging virtual time.
func (w *Warehouse) badArtifacts(im *Image) []string {
	var bad []string
	for _, p := range im.sumPaths() {
		got, ok := w.vol.Checksum(p)
		if !ok || got != im.Sums[p] {
			bad = append(bad, p)
		}
	}
	return bad
}

// corruptTarget picks the artifact a corrupt-extent fault scrambles:
// the first disk extent for a seed, the redo log for a derived image
// (whose extents belong to the parent and are corrupted there).
func corruptTarget(im *Image) string {
	if !im.Derived && len(im.ExtentPaths) > 0 {
		return im.ExtentPaths[0]
	}
	return im.RedoPath
}

// corruptPath scrambles the checksum recorded on one volume file — the
// storage-layer effect both corruption fault kinds share.
func (w *Warehouse) corruptPath(path string) {
	if sum, ok := w.vol.Checksum(path); ok {
		_ = w.vol.SetChecksum(path, scramble(sum))
	}
}

// SetFaults wires the fault registry the warehouse's storage paths
// consult for corrupt-extent (ops "clone" and "scrub") and torn-write
// (op "publish") injections, under site "warehouse". nil disables
// injection at zero cost.
func (w *Warehouse) SetFaults(reg *fault.Registry) { w.faults = reg }

// SetReplica configures the replica volume seed disk extents are
// restored from when corruption is detected — the site's second copy
// of the installer-laid state. Extents of every already-published seed
// image are mirrored immediately; later seed publications mirror as
// they land. Replication is an off-line provisioning step like publish
// itself, so no virtual time is charged; restores from the replica pay
// its device cost for real.
func (w *Warehouse) SetReplica(vol *storage.Volume) {
	w.replica = vol
	if vol == nil {
		return
	}
	// Mirror the extent store, not per-image paths: one replica file per
	// distinct extent, shared by every image referencing that content.
	// Derived images carry no extents of their own and are
	// re-materializable, so there is nothing of theirs to mirror.
	w.mirrorExtents()
}

// Quarantine takes the named image out of service: matching skips it,
// clone opens refuse with a transient error (so in-flight creations
// fail over through the shop's re-bid path), the hot clone cache drops
// it, and its integrity epoch advances so already-open clone contexts
// fail verification. Reports whether the image was newly quarantined.
func (w *Warehouse) Quarantine(name, reason string) bool {
	im, ok := w.images[name]
	if !ok {
		return false
	}
	w.qmu.Lock()
	if _, already := w.quarantine[name]; already {
		w.qmu.Unlock()
		return false
	}
	w.quarantine[name] = reason
	n := len(w.quarantine)
	w.qmu.Unlock()
	im.epoch++
	w.cache.drop(name)
	w.gCacheSize.Set(int64(w.cache.order.Len()))
	w.mQuarantines.Inc()
	w.gQuarantine.Set(int64(n))
	w.journalEvent(journal.QuarantineEnter, name, map[string]string{"reason": reason})
	return true
}

// Unquarantine returns a repaired image to service, advancing its
// epoch: clones opened before the repair must not resume from it.
func (w *Warehouse) Unquarantine(name string) bool {
	w.qmu.Lock()
	_, ok := w.quarantine[name]
	delete(w.quarantine, name)
	n := len(w.quarantine)
	w.qmu.Unlock()
	if !ok {
		return false
	}
	if im, live := w.images[name]; live {
		im.epoch++
	}
	w.cache.drop(name)
	w.gQuarantine.Set(int64(n))
	w.journalEvent(journal.QuarantineExit, name, nil)
	return true
}

// IsQuarantined reports whether the image is currently quarantined.
func (w *Warehouse) IsQuarantined(name string) bool {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	_, ok := w.quarantine[name]
	return ok
}

// QuarantineReason returns why an image is quarantined.
func (w *Warehouse) QuarantineReason(name string) (string, bool) {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	r, ok := w.quarantine[name]
	return r, ok
}

// Quarantined lists the currently quarantined images, sorted. Safe for
// out-of-kernel observers (debug endpoints).
func (w *Warehouse) Quarantined() []string {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	out := make([]string, 0, len(w.quarantine))
	for n := range w.quarantine {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// detect books a verification failure: one corruption event per newly
// bad artifact, and quarantine for the failing image plus every other
// image whose recorded state includes a bad artifact — a corrupted
// seed extent poisons every derived descendant sharing it.
func (w *Warehouse) detect(im *Image, bad []string, origin string) {
	w.mCorruptions.Add(int64(len(bad)))
	w.Quarantine(im.Name, fmt.Sprintf("%s: checksum mismatch on %s", origin, bad[0]))
	for _, name := range w.List() {
		other := w.images[name]
		if other == im {
			continue
		}
		for _, p := range bad {
			if _, shares := other.Sums[p]; shares {
				w.Quarantine(name, fmt.Sprintf("%s: shares corrupt artifact %s", origin, p))
				break
			}
		}
	}
}

// VerifyClone re-checks a clone context after the state copy finished:
// the image must still be published, out of quarantine, and at the
// same integrity epoch as when the context was filled. Anything else
// means the clone may have read suspect bytes, and the error is marked
// transient so the shop fails the creation over to another bidder.
func (w *Warehouse) VerifyClone(ctx *CloneContext) error {
	name := ctx.Image.Name
	im, ok := w.images[name]
	if !ok || im != ctx.Image {
		return fmt.Errorf("warehouse: image %q vanished during clone: %w", name, core.ErrTransient)
	}
	if w.IsQuarantined(name) {
		return fmt.Errorf("warehouse: image %q quarantined during clone: %w", name, core.ErrTransient)
	}
	if im.epoch != ctx.Epoch {
		return fmt.Errorf("warehouse: image %q changed integrity epoch during clone: %w", name, core.ErrTransient)
	}
	return nil
}

// DirtyImages re-checks every published image's recorded checksums
// against the volume and returns the names that no longer verify,
// sorted — the end-of-run audit experiments use to prove zero silent
// corruptions: corrupted sums persist until repaired and repairs only
// follow detection, so an all-clean volume plus an empty quarantine
// list means nothing slipped through.
func (w *Warehouse) DirtyImages() []string {
	var out []string
	for _, name := range w.List() {
		if len(w.badArtifacts(w.images[name])) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// ScrubStats is the integrity counter snapshot experiments assert on.
type ScrubStats struct {
	Passes       int64
	Verified     int64
	Corruptions  int64
	Quarantines  int64
	Repairs      int64
	RepairBytes  int64
	Retirements  int64 // retired by the scrubber as unrepairable
	InQuarantine int   // currently quarantined
}

// ScrubStatsNow reads the current integrity counters.
func (w *Warehouse) ScrubStatsNow() ScrubStats {
	return ScrubStats{
		Passes:       w.mScrubPasses.Value(),
		Verified:     w.mScrubVerified.Value(),
		Corruptions:  w.mCorruptions.Value(),
		Quarantines:  w.mQuarantines.Value(),
		Repairs:      w.mRepairs.Value(),
		RepairBytes:  w.mRepairBytes.Value(),
		Retirements:  w.mScrubRetire.Value(),
		InQuarantine: len(w.Quarantined()),
	}
}
