package warehouse

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/sim"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
)

func newReplica() *storage.Volume {
	return storage.NewVolume("replica", storage.NewDevice("replica-disk", 40<<20, 0))
}

func TestPublishRecordsChecksums(t *testing.T) {
	w := newWarehouse()
	im := seedImage(t, w, "sums")

	// Every artifact — config, redo, mem image, extents, descriptor —
	// carries a checksum, recorded identically in the image and in the
	// volume namespace. Extent slots are content-addressed, so
	// byte-identical slots share one canonical path (and one sum entry).
	distinct := make(map[string]bool)
	for _, p := range im.ExtentPaths {
		distinct[p] = true
	}
	want := 3 + len(distinct) + 1
	if len(im.Sums) != want {
		t.Fatalf("%d checksummed artifacts, want %d: %v", len(im.Sums), want, im.sumPaths())
	}
	for _, p := range im.sumPaths() {
		got, ok := w.vol.Checksum(p)
		if !ok {
			t.Fatalf("volume has no checksum for %s", p)
		}
		if got != im.Sums[p] {
			t.Errorf("%s: volume sum %016x != image sum %016x", p, got, im.Sums[p])
		}
		if got == 0 {
			t.Errorf("%s: zero checksum", p)
		}
	}
	if bad := w.badArtifacts(im); len(bad) != 0 {
		t.Errorf("fresh publish fails verification: %v", bad)
	}

	// The descriptor's integrity section lists every artifact but
	// itself (it cannot record its own sum).
	d := im.Descriptor()
	if len(d.Integrity) != want-1 {
		t.Errorf("descriptor integrity lists %d artifacts, want %d", len(d.Integrity), want-1)
	}
	for _, a := range d.Integrity {
		if a.Path == im.descriptorPath() {
			t.Errorf("descriptor records its own checksum")
		}
		if a.Sum == "" || a.Sum == "0000000000000000" {
			t.Errorf("descriptor sum for %s is empty", a.Path)
		}
	}
}

func TestDerivedSharesParentExtentSums(t *testing.T) {
	w := newWarehouse()
	parent := seedImage(t, w, "parent")
	im := derivedOf(t, parent, "child", "gcc")
	if err := w.PublishDerived(im, 0); err != nil {
		t.Fatal(err)
	}
	for _, p := range im.ExtentPaths {
		if im.Sums[p] != parent.Sums[p] {
			t.Errorf("%s: derived sum %016x != parent sum %016x", p, im.Sums[p], parent.Sums[p])
		}
	}
	if bad := w.badArtifacts(im); len(bad) != 0 {
		t.Errorf("fresh derived publish fails verification: %v", bad)
	}
}

func TestOpenCloneDetectsCorruptionAndQuarantines(t *testing.T) {
	w := newWarehouse()
	hub := telemetry.New()
	w.SetTelemetry(hub)
	im := seedImage(t, w, "rotten")

	w.corruptPath(im.ExtentPaths[0])
	_, err := w.OpenClone("rotten")
	if err == nil {
		t.Fatal("open of corrupt image succeeded")
	}
	if !errors.Is(err, core.ErrTransient) {
		t.Errorf("corruption error is not transient: %v", err)
	}
	if !w.IsQuarantined("rotten") {
		t.Error("detected corruption did not quarantine the image")
	}
	if reason, _ := w.QuarantineReason("rotten"); !strings.Contains(reason, "checksum mismatch") {
		t.Errorf("quarantine reason = %q", reason)
	}
	// No new matches bind to quarantined state.
	for _, c := range w.Candidates("") {
		if c.ID == "rotten" {
			t.Error("quarantined image still offered to the matcher")
		}
	}
	stats := w.ScrubStatsNow()
	if stats.Corruptions != 1 || stats.Quarantines != 1 || stats.InQuarantine != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

// Satellite: a quarantined image must never be served from the hot
// clone cache — quarantine drops the cached context, refuses new opens,
// and a later repair forces a fresh verified fill.
func TestQuarantineInvalidatesHotCloneCache(t *testing.T) {
	w := newWarehouse()
	hub := telemetry.New()
	w.SetTelemetry(hub)
	seedImage(t, w, "hot")

	if _, err := w.OpenClone("hot"); err != nil { // fill
		t.Fatal(err)
	}
	if _, err := w.OpenClone("hot"); err != nil { // hit
		t.Fatal(err)
	}
	if hits, misses := w.CacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}

	if !w.Quarantine("hot", "test") {
		t.Fatal("Quarantine returned false")
	}
	if keys := w.CacheKeys(); len(keys) != 0 {
		t.Fatalf("cache still holds %v after quarantine", keys)
	}
	if _, err := w.OpenClone("hot"); !errors.Is(err, core.ErrTransient) {
		t.Fatalf("open of quarantined image: %v, want transient refusal", err)
	}
	if hits, _ := w.CacheStats(); hits != 1 {
		t.Error("quarantined image was served from the clone cache")
	}

	w.Unquarantine("hot")
	if _, err := w.OpenClone("hot"); err != nil {
		t.Fatalf("open after unquarantine: %v", err)
	}
	// The post-repair open re-verified on a cache miss, not a stale hit.
	if hits, misses := w.CacheStats(); hits != 1 || misses != 2 {
		t.Errorf("hits=%d misses=%d after unquarantine, want 1/2", hits, misses)
	}
}

func TestCorruptSeedExtentQuarantinesSharingDerived(t *testing.T) {
	w := newWarehouse()
	parent := seedImage(t, w, "seed")
	im := derivedOf(t, parent, "leaf", "emacs")
	if err := w.PublishDerived(im, 0); err != nil {
		t.Fatal(err)
	}

	// The derived image's clone read trips over the corrupted shared
	// extent; detection must pull every image whose recorded state
	// includes that extent — the parent too.
	w.corruptPath(parent.ExtentPaths[0])
	if _, err := w.OpenClone("leaf"); !errors.Is(err, core.ErrTransient) {
		t.Fatalf("open over corrupt shared extent: %v", err)
	}
	if !w.IsQuarantined("leaf") || !w.IsQuarantined("seed") {
		t.Errorf("quarantined = %v, want both leaf and seed", w.Quarantined())
	}
}

func TestVerifyCloneFailsAcrossEpochChange(t *testing.T) {
	w := newWarehouse()
	seedImage(t, w, "epoch")
	ctx, err := w.OpenClone("epoch")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyClone(ctx); err != nil {
		t.Fatalf("clean context failed verification: %v", err)
	}

	// A quarantine/repair cycle lands while the clone's state copy is
	// in flight: the context's epoch is stale even though the image is
	// back in service, and the clone must fail over, not resume.
	w.Quarantine("epoch", "test")
	w.Unquarantine("epoch")
	if err := w.VerifyClone(ctx); !errors.Is(err, core.ErrTransient) {
		t.Fatalf("stale-epoch context verified: %v", err)
	}

	ctx2, err := w.OpenClone("epoch")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Remove("epoch"); err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyClone(ctx2); !errors.Is(err, core.ErrTransient) {
		t.Fatalf("context for removed image verified: %v", err)
	}
}

func TestTornWritePublishDetectedOnNextOpen(t *testing.T) {
	w := newWarehouse()
	reg := fault.NewRegistry(1)
	reg.SetProb("warehouse", fault.TornWrite, "publish", 1)
	w.SetFaults(reg)

	im := seedImage(t, w, "torn")
	// The publish reported success; the damage is latent.
	if w.IsQuarantined("torn") {
		t.Fatal("torn write quarantined at publish time; it must be latent")
	}
	if bad := w.badArtifacts(im); len(bad) != 1 || bad[0] != im.RedoPath {
		t.Fatalf("badArtifacts = %v, want the redo log", bad)
	}
	if _, err := w.OpenClone("torn"); !errors.Is(err, core.ErrTransient) {
		t.Fatalf("open of torn publication: %v", err)
	}
	if !w.IsQuarantined("torn") {
		t.Error("torn write not quarantined on first verifying read")
	}
}

func TestScrubRepairsSeedFromReplica(t *testing.T) {
	w := newWarehouse()
	hub := telemetry.New()
	w.SetTelemetry(hub)
	im := seedImage(t, w, "healme")
	w.SetReplica(newReplica())

	w.corruptPath(im.ExtentPaths[0])
	k := sim.NewKernel()
	k.Spawn("scrub", func(p *sim.Proc) {
		w.ScrubPass(p) // detects, quarantines, and repairs in one cycle
	})
	k.Run(0)

	if w.IsQuarantined("healme") {
		reason, _ := w.QuarantineReason("healme")
		t.Fatalf("image still quarantined after repair: %s", reason)
	}
	if bad := w.badArtifacts(im); len(bad) != 0 {
		t.Errorf("artifacts still bad after repair: %v", bad)
	}
	stats := w.ScrubStatsNow()
	if stats.Repairs != 1 || stats.RepairBytes == 0 {
		t.Errorf("stats = %+v, want one repair with bytes", stats)
	}
	if stats.Retirements != 0 {
		t.Error("seed repair retired something")
	}
}

func TestScrubRepairsDerivedByReplay(t *testing.T) {
	w := newWarehouse()
	hub := telemetry.New()
	w.SetTelemetry(hub)
	parent := seedImage(t, w, "base")
	im := derivedOf(t, parent, "replayable", "gdb")
	if err := w.PublishDerived(im, 0); err != nil {
		t.Fatal(err)
	}

	// Corrupt the derived image's own redo log: repair re-materializes
	// it by replaying the action history against the healthy parent —
	// no replica needed.
	w.corruptPath(im.RedoPath)
	k := sim.NewKernel()
	k.Spawn("scrub", func(p *sim.Proc) {
		w.ScrubPass(p)
	})
	k.Run(0)

	if w.IsQuarantined("replayable") {
		t.Fatal("derived image still quarantined after replay repair")
	}
	if bad := w.badArtifacts(im); len(bad) != 0 {
		t.Errorf("artifacts still bad after replay repair: %v", bad)
	}
	if stats := w.ScrubStatsNow(); stats.Repairs != 1 {
		t.Errorf("stats = %+v, want one repair", stats)
	}
}

func TestScrubRetiresUnrepairableDerivedNeverSeeds(t *testing.T) {
	w := newWarehouse()
	hub := telemetry.New()
	w.SetTelemetry(hub)
	parent := seedImage(t, w, "sick")
	im := derivedOf(t, parent, "doomed", "perl")
	if err := w.PublishDerived(im, 0); err != nil {
		t.Fatal(err)
	}

	// No replica: the corrupted seed extent is unrepairable, and the
	// derived image sharing it cannot heal either (its parent stays
	// quarantined). The scrubber must retire the derived image after
	// the repair limit and leave the seed quarantined but registered.
	w.corruptPath(parent.ExtentPaths[0])
	k := sim.NewKernel()
	k.Spawn("scrub", func(p *sim.Proc) {
		for i := 0; i < DefaultRepairAttempts+1; i++ {
			w.ScrubPass(p)
		}
	})
	k.Run(0)

	if _, ok := w.Lookup("doomed"); ok {
		t.Error("unrepairable derived image was not retired")
	}
	if _, ok := w.Lookup("sick"); !ok {
		t.Fatal("seed image was retired by the scrubber")
	}
	if !w.IsQuarantined("sick") {
		t.Error("unrepairable seed left quarantine without being healed")
	}
	stats := w.ScrubStatsNow()
	if stats.Retirements != 1 {
		t.Errorf("scrub retirements = %d, want 1", stats.Retirements)
	}
}

// Regression (replica-leak bugfix): removing a seed image must sweep
// the mirrored extent copies SetReplica/mirror laid down on the replica
// volume. The pre-fix unregister deleted from the primary volume only,
// leaking every removed seed's extents on the replica forever.
func TestRemoveSeedCleansReplicaMirror(t *testing.T) {
	w := newWarehouse()
	replica := newReplica()
	w.SetReplica(replica)
	im := seedImage(t, w, "mirrored")
	for _, p := range im.ExtentPaths {
		if !replica.Exists(p) {
			t.Fatalf("extent %s not mirrored at publish", p)
		}
	}
	paths := append([]string(nil), im.ExtentPaths...)
	if err := w.Remove("mirrored"); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if replica.Exists(p) {
			t.Errorf("replica still holds mirrored extent %s after seed removal", p)
		}
	}
	if files := replica.List(); len(files) != 0 {
		t.Errorf("replica leaked %d files after removal: %v", len(files), files)
	}
}

// Regression (quarantined-victim bugfix): capacity retirement must not
// evict a quarantined derived image while the scrubber is mid-repair on
// it — quarantined images leave through the scrubber's repair-limit
// path, not capacity pressure. The pre-fix retireOne picked victims by
// utility alone, and a quarantined image accrues none, making it the
// natural (and wrong) victim.
func TestRetirementSkipsQuarantinedVictims(t *testing.T) {
	w := newWarehouse()
	parent := seedImage(t, w, "seed")
	a := derivedOf(t, parent, "derived-a", "matlab")
	if err := w.PublishDerived(a, 1*time.Second); err != nil {
		t.Fatal(err)
	}
	b := derivedOf(t, parent, "derived-b", "octave")
	if err := w.PublishDerived(b, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// derived-a is the lowest-utility image — but it is quarantined,
	// mid-repair. The healthy derived-b must be the victim instead.
	w.NoteUse("derived-b", 3, 3*time.Second)
	w.Quarantine("derived-a", "scrub: checksum mismatch (repair pending)")

	w.SetCapacity(w.BytesUsed() + 1<<20)
	c := derivedOf(t, parent, "derived-c", "gnuplot")
	if err := w.PublishDerived(c, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Lookup("derived-a"); !ok {
		t.Error("quarantined derived-a was evicted by capacity pressure mid-repair")
	}
	if _, ok := w.Lookup("derived-b"); ok {
		t.Error("healthy derived-b survived while the quarantined image was evicted")
	}
	if !w.IsQuarantined("derived-a") {
		t.Error("derived-a left quarantine without being repaired")
	}
}

// Satellite: Remove racing the scrubber. The scrub pass sleeps in
// virtual time while charging the deep read, so images can be removed —
// by an operator or by capacity retirement — under it. The pass must
// neither resurrect removed state nor double-book counters.
func TestScrubPassSurvivesConcurrentRemove(t *testing.T) {
	w := newWarehouse()
	hub := telemetry.New()
	w.SetTelemetry(hub)
	// Two independent seeds: the pass scrubs "a" (seconds of virtual
	// time at 11 MB/s) while another proc removes "b", then removes a
	// quarantined "a" mid-repair-wait.
	seedImage(t, w, "a")
	seedImage(t, w, "b")

	k := sim.NewKernel()
	k.Spawn("scrub", func(p *sim.Proc) {
		w.ScrubPass(p)
		w.ScrubPass(p)
	})
	k.Spawn("remove", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond) // mid-deep-read of the first pass
		if err := w.Remove("b"); err != nil {
			t.Errorf("Remove(b): %v", err)
		}
		w.Quarantine("a", "operator hold")
		p.Sleep(10 * time.Millisecond)
		if err := w.Remove("a"); err != nil {
			t.Errorf("Remove(a): %v", err)
		}
	})
	res := k.Run(0)
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded procs: %v", res.Stranded)
	}

	if got := w.List(); len(got) != 0 {
		t.Errorf("images left after removal: %v", got)
	}
	if got := w.Quarantined(); len(got) != 0 {
		t.Errorf("removed image leaked in quarantine: %v", got)
	}
	if stats := w.ScrubStatsNow(); stats.Passes != 2 || stats.Repairs != 0 || stats.Retirements != 0 {
		t.Errorf("stats = %+v, want 2 passes and no repair/retire of removed images", stats)
	}
}

// The quarantine accessors are the one warehouse surface read from
// outside the kernel (vmctl via the debug endpoint), so they must be
// safe against a concurrently mutating kernel. Run under -race.
func TestQuarantineAccessorsConcurrentWithMutation(t *testing.T) {
	w := newWarehouse()
	for _, n := range []string{"q0", "q1", "q2"} {
		seedImage(t, w, n)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.Quarantined()
				w.IsQuarantined("q1")
				w.QuarantineReason("q2")
			}
		}()
	}
	for i := 0; i < 500; i++ {
		n := []string{"q0", "q1", "q2"}[i%3]
		w.Quarantine(n, "churn")
		w.Unquarantine(n)
	}
	close(stop)
	wg.Wait()
}
