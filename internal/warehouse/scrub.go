package warehouse

import (
	"time"

	"vmplants/internal/fault"
	"vmplants/internal/sim"
)

// DefaultScrubInterval is how long the scrubber idles between passes.
// Real scrubbers run on day-scale cycles; the default here is short
// enough that experiments over minutes of virtual time see several
// passes.
const DefaultScrubInterval = 30 * time.Second

// Scrubber is the warehouse's background integrity process: it
// periodically re-reads every published image's state off the volume
// (paying the device cost off the creation critical path), re-verifies
// checksums, and drives quarantined images through repair or
// retirement. One scrubber per warehouse.
type Scrubber struct {
	w        *Warehouse
	Interval time.Duration

	stopped bool
	paused  bool
	proc    *sim.Proc
}

// NewScrubber returns a scrubber for the warehouse (not yet started).
// interval ≤ 0 selects DefaultScrubInterval.
func (w *Warehouse) NewScrubber(interval time.Duration) *Scrubber {
	if interval <= 0 {
		interval = DefaultScrubInterval
	}
	return &Scrubber{w: w, Interval: interval}
}

// Start spawns the scrub loop on the kernel. The loop re-schedules
// itself forever, so a simulation that runs to quiescence must Stop it
// before the last foreground process exits.
func (s *Scrubber) Start(k *sim.Kernel) {
	s.proc = k.Spawn("warehouse/scrubber", func(p *sim.Proc) {
		for {
			// Brownout: a suspended scrubber parks between passes so its
			// deep reads stop competing with foreground creations; Suspend
			// (false) wakes it straight back into the loop.
			for s.paused && !s.stopped {
				p.Wait(time.Hour)
			}
			if s.stopped {
				return
			}
			s.w.ScrubPass(p)
			if s.stopped {
				return
			}
			p.Wait(s.Interval)
		}
	})
}

// Suspend pauses (or resumes) the scrub loop without tearing it down —
// the fleet controller's brownout hook. A suspended scrubber finishes
// any pass already in progress, then parks until resumed or stopped.
func (s *Scrubber) Suspend(on bool) {
	s.paused = on
	if !on && s.proc != nil {
		s.proc.WakeUp()
	}
}

// Stop ends the scrub loop: the flag stops the next iteration and the
// wake-up pulls the proc out of its between-pass sleep so the kernel
// can reach quiescence. Must be called from a running proc.
func (s *Scrubber) Stop() {
	s.stopped = true
	if s.proc != nil {
		s.proc.WakeUp()
	}
}

// ScrubPass runs one full scrub cycle: verify every in-service image
// (reading its accounted bytes off the volume), then attempt repair of
// everything quarantined — seeds first, so a healed parent extent
// clears the derived images poisoned through it in the same pass.
func (w *Warehouse) ScrubPass(p *sim.Proc) {
	for _, name := range w.List() {
		im, ok := w.images[name]
		if !ok || w.IsQuarantined(name) {
			continue
		}
		// The deep read: a scrub pays for the bytes it re-reads. A
		// derived image's accounted bytes exclude the shared parent
		// extents, which are scrubbed at the parent; a seed's extents
		// live in the content store, so each slot is re-read through its
		// canonical path (dedup makes that the same file many times —
		// the scrub still pays per reference, like the reads it models).
		deep := im.bytes
		if !im.Derived {
			for _, ep := range im.ExtentPaths {
				if size, err := w.vol.Stat(ep); err == nil {
					deep += size
				}
			}
		}
		w.vol.Charge(p, deep, 1)
		// The proc slept in Charge; the image may have been removed or
		// quarantined meanwhile.
		if cur, live := w.images[name]; !live || cur != im || w.IsQuarantined(name) {
			continue
		}
		if w.faults.Should(integritySite, fault.CorruptExtent, "scrub") {
			w.corruptPath(corruptTarget(im))
		}
		if bad := w.badArtifacts(im); len(bad) > 0 {
			w.detect(im, bad, "scrub")
		} else {
			w.mScrubVerified.Inc()
		}
	}
	for _, derived := range []bool{false, true} {
		for _, name := range w.Quarantined() {
			im, ok := w.images[name]
			if !ok || im.Derived != derived {
				continue
			}
			w.repairOne(p, im)
		}
	}
	w.mScrubPasses.Inc()
}

// repairOne attempts to heal one quarantined image and settles the
// outcome: back in service when every artifact verifies again,
// retirement once the repair limit is exhausted and retirement is safe
// (derived, no live clones), quarantined otherwise.
func (w *Warehouse) repairOne(p *sim.Proc, im *Image) {
	var healed int64
	if im.Derived {
		healed = w.repairDerived(p, im)
	} else {
		healed = w.repairSeed(p, im)
	}
	// Re-lookup: the image may have been removed while repair I/O slept.
	if cur, live := w.images[im.Name]; !live || cur != im {
		return
	}
	if len(w.badArtifacts(im)) == 0 {
		w.mRepairs.Inc()
		w.mRepairBytes.Add(healed)
		w.qmu.Lock()
		delete(w.repairFails, im.Name)
		w.qmu.Unlock()
		w.Unquarantine(im.Name)
		return
	}
	w.qmu.Lock()
	w.repairFails[im.Name]++
	exhausted := w.repairFails[im.Name] >= w.repairLimit
	w.qmu.Unlock()
	if exhausted && im.Derived && im.refs == 0 {
		w.retired++
		w.mRetirements.Inc()
		w.mScrubRetire.Inc()
		w.unregister(im)
	}
	// Seeds and referenced images are never retired by the scrubber:
	// they stay quarantined until an operator (or a later pass with a
	// replica) can heal them.
}

// repairSeed restores a seed image's bad artifacts: disk extents are
// copied back from the replica volume (paying both devices' costs);
// everything else — config, redo log, memory image, descriptor — is
// regenerated from the in-memory image, whose Disk still holds the
// frozen golden state. Returns the bytes healed.
func (w *Warehouse) repairSeed(p *sim.Proc, im *Image) int64 {
	var healed int64
	for _, path := range w.badArtifacts(im) {
		if im.isExtent(path) {
			if w.replica == nil || !w.replica.Exists(path) {
				continue // unrepairable without a replica copy
			}
			if n, err := w.replica.CopyTo(p, path, w.vol, path, 1); err == nil {
				healed += n
			}
			continue
		}
		healed += w.rebuildArtifact(p, im, path)
	}
	return healed
}

// repairDerived re-materializes a derived image's own state by
// replaying its DAG suffix against the parent seed — the fingerprint
// name already pins the action history, so a successful replay proves
// the regenerated state matches what was published. Bad shared extents
// cannot be healed here; they clear when the parent's repair lands
// (seeds are repaired first in each pass).
func (w *Warehouse) repairDerived(p *sim.Proc, im *Image) int64 {
	parent, ok := w.images[im.Parent]
	if !ok || w.IsQuarantined(im.Parent) {
		return 0 // need a healthy parent to replay against
	}
	var own []string
	for _, path := range w.badArtifacts(im) {
		if !im.isExtent(path) {
			own = append(own, path)
		}
	}
	if len(own) == 0 {
		return 0
	}
	if _, err := BuildDerived(im.Name, parent, im.Performed); err != nil {
		return 0 // history no longer replays; unrepairable
	}
	var healed int64
	for _, path := range own {
		healed += w.rebuildArtifact(p, im, path)
	}
	return healed
}

// isExtent reports whether path is one of the image's disk extents
// (shared with the parent for derived images).
func (im *Image) isExtent(path string) bool {
	for _, p := range im.ExtentPaths {
		if p == path {
			return true
		}
	}
	return false
}

// rebuildArtifact regenerates one non-extent state file from the
// in-memory image, paying the volume's write cost, and records the
// canonical checksum. Returns the bytes written.
func (w *Warehouse) rebuildArtifact(p *sim.Proc, im *Image, path string) int64 {
	var size int64
	switch path {
	case im.ConfigPath:
		size = configBytes
	case im.RedoPath:
		size = im.Disk.RedoBytes()
	case im.MemImagePath:
		size = im.MemImageBytes()
	case im.descriptorPath():
		blob, err := im.DescriptorXML()
		if err != nil {
			return 0
		}
		size = int64(len(blob))
	default:
		return 0
	}
	w.vol.Charge(p, size, 1)
	w.vol.WriteMetaSum(path, size, im.Sums[path])
	return size
}
