// Package warehouse implements the VM Warehouse (paper §3.2, Figure 2):
// the store of "golden" virtual machine images the Production Process
// Planner matches creation requests against. Golden machines are stored
// as files on the shared (NFS-backed) warehouse volume — a VM
// configuration file, memory-state file, virtual-disk extents and base
// redo log — and each is described by an XML descriptor recording its
// memory size, installed operating system and the configuration actions
// already performed on it (paper §4.1).
package warehouse

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"sort"

	"vmplants/internal/actions"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/match"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
	"vmplants/internal/vdisk"
)

// Backend names of the production lines an image suits.
const (
	BackendVMware = "vmware" // suspended checkpoint: cloned VMs resume
	BackendUML    = "uml"    // filesystem image: cloned VMs boot
)

// MemImageOverheadMB is device state saved alongside guest RAM in a
// checkpoint file (a .vmss holds RAM plus device model state).
const MemImageOverheadMB = 6

// DiskSpanFiles is how many extent files a golden virtual disk spans
// (the paper's 2 GB disk is "spanned across 16 files").
const DiskSpanFiles = 16

// Image is one golden machine.
type Image struct {
	// Name is the warehouse key.
	Name string
	// Hardware is the checkpointed configuration.
	Hardware core.HardwareSpec
	// Backend says which production line can instantiate the image.
	Backend string
	// Performed is the recorded configuration history from blank
	// machine to checkpoint, in execution order.
	Performed []dag.Action
	// Guest is the guest OS state snapshot at checkpoint time.
	Guest *actions.State
	// Disk is the golden virtual disk (frozen, clean top layer).
	Disk *vdisk.Disk

	// State file paths on the warehouse volume.
	ConfigPath   string
	MemImagePath string // empty for boot-style (UML) images
	RedoPath     string
	ExtentPaths  []string

	// refs counts live clones whose virtual disks link into this
	// image's state files; a referenced image cannot be retired.
	refs int
}

// Ref records a live clone of the image.
func (im *Image) Ref() { im.refs++ }

// Unref releases a clone's reference.
func (im *Image) Unref() error {
	if im.refs == 0 {
		return fmt.Errorf("warehouse: unref of %q with no references", im.Name)
	}
	im.refs--
	return nil
}

// Refs reports live clones of the image.
func (im *Image) Refs() int { return im.refs }

// OS returns the installed operating system ("" for a blank machine).
func (im *Image) OS() string {
	if im.Guest == nil {
		return ""
	}
	return im.Guest.OS
}

// MemImageBytes is the size of the checkpointed memory state that must
// be copied per clone (zero for boot-style images).
func (im *Image) MemImageBytes() int64 {
	if im.MemImagePath == "" {
		return 0
	}
	return int64(im.Hardware.MemoryMB+MemImageOverheadMB) * 1024 * 1024
}

// Candidate converts the image to the matcher's view of it.
func (im *Image) Candidate() match.Candidate {
	return match.Candidate{ID: im.Name, Hardware: im.Hardware, Performed: im.Performed}
}

// Descriptor is the XML description stored beside each image (paper
// §4.1: "XML files are used to describe such cached images in terms of
// their memory sizes, operating system installed, and the configuration
// actions that have already been performed").
type Descriptor struct {
	XMLName  xml.Name      `xml:"golden-machine"`
	Name     string        `xml:"name,attr"`
	Backend  string        `xml:"backend,attr"`
	Arch     string        `xml:"hardware>arch"`
	MemoryMB int           `xml:"hardware>memoryMB"`
	DiskMB   int           `xml:"hardware>diskMB"`
	OS       string        `xml:"os"`
	Actions  []descrAction `xml:"performed>action"`
}

type descrAction struct {
	Op     string       `xml:"op,attr"`
	Target string       `xml:"target,attr"`
	Params []descrParam `xml:"param"`
}

type descrParam struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// Descriptor builds the XML descriptor for the image.
func (im *Image) Descriptor() Descriptor {
	d := Descriptor{
		Name:     im.Name,
		Backend:  im.Backend,
		Arch:     im.Hardware.Arch,
		MemoryMB: im.Hardware.MemoryMB,
		DiskMB:   im.Hardware.DiskMB,
		OS:       im.OS(),
	}
	for _, a := range im.Performed {
		da := descrAction{Op: a.Op, Target: a.Target.String()}
		keys := make([]string, 0, len(a.Params))
		for k := range a.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			da.Params = append(da.Params, descrParam{Name: k, Value: a.Params[k]})
		}
		d.Actions = append(d.Actions, da)
	}
	return d
}

// ParseDescriptor decodes an XML descriptor and reconstructs the
// performed-action list.
func ParseDescriptor(blob []byte) (Descriptor, []dag.Action, error) {
	var d Descriptor
	if err := xml.Unmarshal(blob, &d); err != nil {
		return Descriptor{}, nil, fmt.Errorf("warehouse: bad descriptor: %w", err)
	}
	var perf []dag.Action
	for _, da := range d.Actions {
		tgt, err := dag.ParseTarget(da.Target)
		if err != nil {
			return Descriptor{}, nil, fmt.Errorf("warehouse: descriptor %q: %w", d.Name, err)
		}
		a := dag.Action{Op: da.Op, Target: tgt}
		if len(da.Params) > 0 {
			a.Params = make(map[string]string, len(da.Params))
			for _, p := range da.Params {
				a.Params[p.Name] = p.Value
			}
		}
		perf = append(perf, a)
	}
	return d, perf, nil
}

// Warehouse is the image store over the shared volume.
type Warehouse struct {
	vol    *storage.Volume
	images map[string]*Image
	cache  *cloneCache

	// Telemetry instruments (nil-safe no-ops when unset).
	mLookups      *telemetry.Counter
	mLookupMisses *telemetry.Counter
	mPublishes    *telemetry.Counter
	gImages       *telemetry.Gauge
	mCacheHits    *telemetry.Counter
	mCacheMisses  *telemetry.Counter
	gCacheSize    *telemetry.Gauge
}

// New creates an empty warehouse on the given (server-side) volume.
func New(vol *storage.Volume) *Warehouse {
	return &Warehouse{
		vol:    vol,
		images: make(map[string]*Image),
		cache:  newCloneCache(DefaultCloneCacheSize),
	}
}

// SetTelemetry wires the warehouse's instruments: image lookup counters
// ("warehouse.lookups", "warehouse.lookup_misses"), the publish counter
// ("warehouse.publishes"), the published-image gauge
// ("warehouse.images") and the hot clone-cache instruments
// ("warehouse.cache_hits", "warehouse.cache_misses",
// "warehouse.cache_size"). Passing nil detaches them.
func (w *Warehouse) SetTelemetry(h *telemetry.Hub) {
	w.mLookups = h.Counter("warehouse.lookups")
	w.mLookupMisses = h.Counter("warehouse.lookup_misses")
	w.mPublishes = h.Counter("warehouse.publishes")
	w.gImages = h.Gauge("warehouse.images")
	w.mCacheHits = h.Counter("warehouse.cache_hits")
	w.mCacheMisses = h.Counter("warehouse.cache_misses")
	w.gCacheSize = h.Gauge("warehouse.cache_size")
}

// Volume returns the backing volume.
func (w *Warehouse) Volume() *storage.Volume { return w.vol }

// Publish registers a golden image and lays its state files down on the
// warehouse volume. Publication is the paper's off-line "golden machine
// definition" step, performed by installers before plants serve
// requests, so no virtual time is charged.
func (w *Warehouse) Publish(im *Image) error {
	if im.Name == "" {
		return fmt.Errorf("warehouse: image needs a name")
	}
	if _, dup := w.images[im.Name]; dup {
		return fmt.Errorf("warehouse: image %q already published", im.Name)
	}
	if err := im.Hardware.Validate(); err != nil {
		return fmt.Errorf("warehouse: image %q: %w", im.Name, err)
	}
	if im.Backend != BackendVMware && im.Backend != BackendUML {
		return fmt.Errorf("warehouse: image %q: unknown backend %q", im.Name, im.Backend)
	}
	if im.Disk == nil {
		return fmt.Errorf("warehouse: image %q has no disk", im.Name)
	}
	// Consistency: replaying the recorded actions must reproduce the
	// recorded guest state's identity (same OS), catching descriptors
	// that drifted from their content.
	replayed, err := actions.Replay(im.Performed)
	if err != nil {
		return fmt.Errorf("warehouse: image %q history does not replay: %w", im.Name, err)
	}
	if im.Guest == nil {
		im.Guest = replayed
	} else if im.Guest.OS != replayed.OS {
		return fmt.Errorf("warehouse: image %q records OS %q but history yields %q",
			im.Name, im.Guest.OS, replayed.OS)
	}

	dir := "golden/" + im.Name + "/"
	im.ConfigPath = dir + "vm.cfg"
	w.vol.WriteMeta(im.ConfigPath, 2*1024)
	im.RedoPath = dir + "base.redo"
	w.vol.WriteMeta(im.RedoPath, im.Disk.RedoBytes())
	if im.Backend == BackendVMware {
		im.MemImagePath = dir + "mem.vmss"
		w.vol.WriteMeta(im.MemImagePath, im.MemImageBytes())
	}
	im.ExtentPaths = nil
	extent := im.Disk.Base().SizeBytes() / int64(DiskSpanFiles)
	for i := 0; i < DiskSpanFiles; i++ {
		p := fmt.Sprintf("%sdisk-s%03d.vmdk", dir, i)
		w.vol.WriteMeta(p, extent)
		im.ExtentPaths = append(im.ExtentPaths, p)
	}
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(im.Descriptor()); err != nil {
		return fmt.Errorf("warehouse: image %q descriptor: %w", im.Name, err)
	}
	w.vol.WriteMeta(dir+"descriptor.xml", int64(buf.Len()))
	w.images[im.Name] = im
	w.mPublishes.Inc()
	w.gImages.Set(int64(len(w.images)))
	return nil
}

// Remove retires a golden image, deleting its state files from the
// warehouse volume. An image with live clones cannot be removed: their
// virtual disks hold soft links into its extents.
func (w *Warehouse) Remove(name string) error {
	im, ok := w.images[name]
	if !ok {
		return fmt.Errorf("warehouse: no image %q", name)
	}
	if im.refs > 0 {
		return fmt.Errorf("warehouse: image %q has %d live clones", name, im.refs)
	}
	paths := append([]string{im.ConfigPath, im.RedoPath, "golden/" + name + "/descriptor.xml"}, im.ExtentPaths...)
	if im.MemImagePath != "" {
		paths = append(paths, im.MemImagePath)
	}
	for _, p := range paths {
		if err := w.vol.Delete(p); err != nil {
			return err
		}
	}
	delete(w.images, name)
	w.cache.drop(name)
	w.gCacheSize.Set(int64(w.cache.order.Len()))
	w.gImages.Set(int64(len(w.images)))
	return nil
}

// Lookup returns a published image.
func (w *Warehouse) Lookup(name string) (*Image, bool) {
	im, ok := w.images[name]
	w.mLookups.Inc()
	if !ok {
		w.mLookupMisses.Inc()
	}
	return im, ok
}

// List returns all image names, sorted.
func (w *Warehouse) List() []string {
	out := make([]string, 0, len(w.images))
	for n := range w.images {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Candidates returns the matcher's view of every image suited to the
// given backend ("" means any), in deterministic order.
func (w *Warehouse) Candidates(backend string) []match.Candidate {
	var out []match.Candidate
	for _, n := range w.List() {
		im := w.images[n]
		if backend != "" && im.Backend != backend {
			continue
		}
		out = append(out, im.Candidate())
	}
	return out
}

// BuildGolden constructs a golden image in memory: it replays the given
// configuration history onto a blank guest, builds the golden disk with
// its configuration delta in a frozen redo log, and returns the
// unpublished image. The caller publishes it.
func BuildGolden(name string, hw core.HardwareSpec, backend string, performed []dag.Action) (*Image, error) {
	guest, err := actions.Replay(performed)
	if err != nil {
		return nil, fmt.Errorf("warehouse: golden %q: %w", name, err)
	}
	base, err := vdisk.NewImage(name+"-base", hw.DiskMB, DiskSpanFiles)
	if err != nil {
		return nil, err
	}
	disk := vdisk.NewDisk(name, base)
	// The configuration session dirtied some blocks: one per performed
	// action plus a marker, so clones have observable content.
	for i := range performed {
		blk := make([]byte, vdisk.BlockSize)
		copy(blk, fmt.Sprintf("golden %s action %d (%s)", name, i, performed[i].Op))
		if err := disk.WriteBlock(int64(i), blk); err != nil {
			return nil, err
		}
	}
	disk.Freeze()
	return &Image{
		Name:      name,
		Hardware:  hw,
		Backend:   backend,
		Performed: performed,
		Guest:     guest,
		Disk:      disk,
	}, nil
}
