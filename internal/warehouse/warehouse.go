// Package warehouse implements the VM Warehouse (paper §3.2, Figure 2):
// the store of "golden" virtual machine images the Production Process
// Planner matches creation requests against. Golden machines are stored
// as files on the shared (NFS-backed) warehouse volume — a VM
// configuration file, memory-state file, virtual-disk extents and base
// redo log — and each is described by an XML descriptor recording its
// memory size, installed operating system and the configuration actions
// already performed on it (paper §4.1).
package warehouse

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/fault"
	"vmplants/internal/journal"
	"vmplants/internal/match"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
	"vmplants/internal/vdisk"
)

// Backend names of the production lines an image suits.
const (
	BackendVMware = "vmware" // suspended checkpoint: cloned VMs resume
	BackendUML    = "uml"    // filesystem image: cloned VMs boot
)

// MemImageOverheadMB is device state saved alongside guest RAM in a
// checkpoint file (a .vmss holds RAM plus device model state).
const MemImageOverheadMB = 6

// DiskSpanFiles is how many extent files a golden virtual disk spans
// (the paper's 2 GB disk is "spanned across 16 files").
const DiskSpanFiles = 16

// Image is one golden machine.
type Image struct {
	// Name is the warehouse key.
	Name string
	// Hardware is the checkpointed configuration.
	Hardware core.HardwareSpec
	// Backend says which production line can instantiate the image.
	Backend string
	// Performed is the recorded configuration history from blank
	// machine to checkpoint, in execution order.
	Performed []dag.Action
	// Guest is the guest OS state snapshot at checkpoint time.
	Guest *actions.State
	// Disk is the golden virtual disk (frozen, clean top layer).
	Disk *vdisk.Disk

	// Derived marks an image the learning loop checkpointed back from
	// a configured clone, as opposed to an installer-seeded golden
	// machine. Derived images share their parent's disk extents (the
	// checkpoint is copy-on-write) and are the only images capacity
	// retirement may evict.
	Derived bool
	// Parent names the seed image a derived checkpoint was cloned
	// from; the derived disk's extent files belong to the parent, so
	// the parent holds a reference for the derived image's lifetime.
	Parent string

	// State file paths on the warehouse volume.
	ConfigPath   string
	MemImagePath string // empty for boot-style (UML) images
	RedoPath     string
	ExtentPaths  []string

	// Sums maps every state-file path (descriptor included) to its
	// canonical content checksum, computed at publish time. The volume
	// records the same sums in its namespace; clone and scrub paths
	// verify the two still agree.
	Sums map[string]uint64
	// epoch advances whenever the image's integrity status changes
	// (quarantine, repair); see Epoch.
	epoch int64

	// refs counts live clones whose virtual disks link into this
	// image's state files; a referenced image cannot be retired.
	refs int

	// Usage statistics feeding utility-based retirement: how often the
	// planner cloned this image, the summed match scores of those uses
	// (configuration work the image saved), and when it was last used.
	uses     int
	scoreSum int
	lastUsed time.Duration
	// bytes is the volume space accounted to this image at publish
	// time (shared parent extents excluded for derived images).
	bytes int64
}

// Ref records a live clone of the image.
func (im *Image) Ref() { im.refs++ }

// Unref releases a clone's reference.
func (im *Image) Unref() error {
	if im.refs == 0 {
		return fmt.Errorf("warehouse: unref of %q with no references", im.Name)
	}
	im.refs--
	return nil
}

// Refs reports live clones of the image.
func (im *Image) Refs() int { return im.refs }

// Uses reports how many creations cloned this image.
func (im *Image) Uses() int { return im.uses }

// Utility is the retirement score: summed match scores of the image's
// uses, i.e. how much configuration work it has saved so far.
func (im *Image) Utility() int { return im.scoreSum }

// Bytes reports the volume space accounted to the image at publish
// time (shared parent extents excluded for derived images).
func (im *Image) Bytes() int64 { return im.bytes }

// OS returns the installed operating system ("" for a blank machine).
func (im *Image) OS() string {
	if im.Guest == nil {
		return ""
	}
	return im.Guest.OS
}

// MemImageBytes is the size of the checkpointed memory state that must
// be copied per clone (zero for boot-style images).
func (im *Image) MemImageBytes() int64 {
	if im.MemImagePath == "" {
		return 0
	}
	return int64(im.Hardware.MemoryMB+MemImageOverheadMB) * 1024 * 1024
}

// CheckpointBytes is the state a derived checkpoint of this image must
// move to the warehouse: the redo log plus, for suspended-checkpoint
// backends, the memory image. Unlike MemImageBytes it does not depend
// on the files having been laid down yet, so publishers can price the
// upload before the image is registered.
func (im *Image) CheckpointBytes() int64 {
	var mem int64
	if im.Backend == BackendVMware {
		mem = int64(im.Hardware.MemoryMB+MemImageOverheadMB) * 1024 * 1024
	}
	return im.Disk.RedoBytes() + mem
}

// Candidate converts the image to the matcher's view of it.
func (im *Image) Candidate() match.Candidate {
	return match.Candidate{ID: im.Name, Hardware: im.Hardware, Performed: im.Performed}
}

// Descriptor is the XML description stored beside each image (paper
// §4.1: "XML files are used to describe such cached images in terms of
// their memory sizes, operating system installed, and the configuration
// actions that have already been performed").
type Descriptor struct {
	XMLName  xml.Name      `xml:"golden-machine"`
	Name     string        `xml:"name,attr"`
	Backend  string        `xml:"backend,attr"`
	Arch     string        `xml:"hardware>arch"`
	MemoryMB int           `xml:"hardware>memoryMB"`
	DiskMB   int           `xml:"hardware>diskMB"`
	OS       string        `xml:"os"`
	Actions  []descrAction `xml:"performed>action"`
	// Integrity records the content checksum of every other state file
	// (the descriptor cannot checksum itself), paper-style: the XML
	// descriptor is the image's manifest, so it carries the sums a
	// reader needs to verify what it is about to clone.
	Integrity []descrSum `xml:"integrity>artifact"`
}

type descrSum struct {
	Path string `xml:"path,attr"`
	Sum  string `xml:"sum,attr"`
}

type descrAction struct {
	Op     string       `xml:"op,attr"`
	Target string       `xml:"target,attr"`
	Params []descrParam `xml:"param"`
}

type descrParam struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// Descriptor builds the XML descriptor for the image.
func (im *Image) Descriptor() Descriptor {
	d := Descriptor{
		Name:     im.Name,
		Backend:  im.Backend,
		Arch:     im.Hardware.Arch,
		MemoryMB: im.Hardware.MemoryMB,
		DiskMB:   im.Hardware.DiskMB,
		OS:       im.OS(),
	}
	for _, a := range im.Performed {
		da := descrAction{Op: a.Op, Target: a.Target.String()}
		keys := make([]string, 0, len(a.Params))
		for k := range a.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			da.Params = append(da.Params, descrParam{Name: k, Value: a.Params[k]})
		}
		d.Actions = append(d.Actions, da)
	}
	own := im.descriptorPath()
	for _, p := range im.sumPaths() {
		if p == own {
			continue
		}
		d.Integrity = append(d.Integrity, descrSum{Path: p, Sum: fmt.Sprintf("%016x", im.Sums[p])})
	}
	return d
}

// DescriptorXML serializes the image's descriptor to the XML bytes
// stored beside it on the volume — and carried by the publish-image
// RPC when a plant pushes a derived image to a remote warehouse.
func (im *Image) DescriptorXML() ([]byte, error) {
	return encodeDescriptor(im.Descriptor())
}

// ParseDescriptor decodes an XML descriptor and reconstructs the
// performed-action list.
func ParseDescriptor(blob []byte) (Descriptor, []dag.Action, error) {
	var d Descriptor
	if err := xml.Unmarshal(blob, &d); err != nil {
		return Descriptor{}, nil, fmt.Errorf("warehouse: bad descriptor: %w", err)
	}
	var perf []dag.Action
	for _, da := range d.Actions {
		tgt, err := dag.ParseTarget(da.Target)
		if err != nil {
			return Descriptor{}, nil, fmt.Errorf("warehouse: descriptor %q: %w", d.Name, err)
		}
		a := dag.Action{Op: da.Op, Target: tgt}
		if len(da.Params) > 0 {
			a.Params = make(map[string]string, len(da.Params))
			for _, p := range da.Params {
				a.Params[p.Name] = p.Value
			}
		}
		perf = append(perf, a)
	}
	return d, perf, nil
}

// Warehouse is the image store over the shared volume.
type Warehouse struct {
	vol    *storage.Volume
	images map[string]*Image
	cache  *cloneCache
	// extents is the content-addressed store seed disk extents live in:
	// byte-identical extents share one refcounted physical copy
	// (extentstore.go).
	extents *extentStore

	// faults decides corruption injections on the warehouse's storage
	// paths; nil means no injection (SetFaults).
	faults *fault.Registry
	// replica is the second copy seed extents are restored from when
	// corruption is detected; nil means seeds are unrepairable
	// (SetReplica).
	replica *storage.Volume

	// quarantine maps out-of-service image names to the reason they
	// were pulled. qmu covers it (and repairFails) for out-of-kernel
	// observers like debug endpoints; all mutation happens in-kernel.
	// jnl, when attached, receives catalog and quarantine events
	// (durability.go); Restart replays it to rebuild the quarantine
	// set a daemon death would otherwise forget.
	jnl *journal.Journal

	qmu         sync.Mutex
	quarantine  map[string]string
	repairFails map[string]int
	// repairLimit is how many failed repair passes the scrubber allows
	// before retiring an unrepairable (derived, unreferenced) image.
	repairLimit int

	// capacity is the byte budget for image state on the volume; 0
	// means unlimited. The budget is enforced against derived-image
	// publications only — installer-seeded images always fit — by
	// retiring the lowest-utility unreferenced derived image until the
	// newcomer has room.
	capacity  int64
	bytesUsed int64
	retired   int64

	// Telemetry instruments (nil-safe no-ops when unset).
	mLookups      *telemetry.Counter
	mLookupMisses *telemetry.Counter
	mPublishes    *telemetry.Counter
	mRetirements  *telemetry.Counter
	gImages       *telemetry.Gauge
	gDerived      *telemetry.Gauge
	gBytesUsed    *telemetry.Gauge
	mCacheHits    *telemetry.Counter
	mCacheMisses  *telemetry.Counter
	gCacheSize    *telemetry.Gauge

	// Extent-store instruments.
	gExtentEntries  *telemetry.Gauge
	gExtentLogical  *telemetry.Gauge
	gExtentPhysical *telemetry.Gauge

	// Integrity instruments.
	mScrubPasses   *telemetry.Counter
	mScrubVerified *telemetry.Counter
	mCorruptions   *telemetry.Counter
	mQuarantines   *telemetry.Counter
	mRepairs       *telemetry.Counter
	mRepairBytes   *telemetry.Counter
	mScrubRetire   *telemetry.Counter
	gQuarantine    *telemetry.Gauge
}

// New creates an empty warehouse on the given (server-side) volume.
func New(vol *storage.Volume) *Warehouse {
	return &Warehouse{
		vol:         vol,
		images:      make(map[string]*Image),
		cache:       newCloneCache(DefaultCloneCacheSize),
		extents:     newExtentStore(),
		quarantine:  make(map[string]string),
		repairFails: make(map[string]int),
		repairLimit: DefaultRepairAttempts,
	}
}

// SetTelemetry wires the warehouse's instruments: image lookup counters
// ("warehouse.lookups", "warehouse.lookup_misses"), the publish counter
// ("warehouse.publishes"), the published-image gauge
// ("warehouse.images"), the learning-loop instruments
// ("warehouse.derived_images", "warehouse.retirements",
// "warehouse.bytes_used") and the hot clone-cache instruments
// ("warehouse.cache_hits", "warehouse.cache_misses",
// "warehouse.cache_size"). Passing nil detaches them.
func (w *Warehouse) SetTelemetry(h *telemetry.Hub) {
	w.mLookups = h.Counter("warehouse.lookups")
	w.mLookupMisses = h.Counter("warehouse.lookup_misses")
	w.mPublishes = h.Counter("warehouse.publishes")
	w.mRetirements = h.Counter("warehouse.retirements")
	w.gImages = h.Gauge("warehouse.images")
	w.gDerived = h.Gauge("warehouse.derived_images")
	w.gBytesUsed = h.Gauge("warehouse.bytes_used")
	w.mCacheHits = h.Counter("warehouse.cache_hits")
	w.mCacheMisses = h.Counter("warehouse.cache_misses")
	w.gCacheSize = h.Gauge("warehouse.cache_size")
	w.gExtentEntries = h.Gauge("warehouse.extent_entries")
	w.gExtentLogical = h.Gauge("warehouse.extent_logical_bytes")
	w.gExtentPhysical = h.Gauge("warehouse.extent_physical_bytes")
	w.mScrubPasses = h.Counter("warehouse.scrub_passes")
	w.mScrubVerified = h.Counter("warehouse.scrub_verified")
	w.mCorruptions = h.Counter("warehouse.corruptions_detected")
	w.mQuarantines = h.Counter("warehouse.quarantined")
	w.mRepairs = h.Counter("warehouse.repairs")
	w.mRepairBytes = h.Counter("warehouse.repair_bytes")
	w.mScrubRetire = h.Counter("warehouse.scrub_retirements")
	w.gQuarantine = h.Gauge("warehouse.quarantine_size")
}

// SetCapacity sets the byte budget for image state on the warehouse
// volume (0 = unlimited). Derived-image publications that would exceed
// it trigger utility-based retirement; seed images are never evicted.
func (w *Warehouse) SetCapacity(bytes int64) { w.capacity = bytes }

// Capacity returns the configured byte budget (0 = unlimited).
func (w *Warehouse) Capacity() int64 { return w.capacity }

// BytesUsed reports the volume space accounted to published images:
// per-image state bytes plus the physical (deduplicated) bytes of the
// content-addressed extent store. Before the store, every seed carried
// its full extent capacity here; identical extents now count once.
func (w *Warehouse) BytesUsed() int64 {
	return w.bytesUsed + w.ExtentStatsNow().PhysicalBytes
}

// DerivedCount reports how many derived images are published.
func (w *Warehouse) DerivedCount() int {
	n := 0
	for _, im := range w.images {
		if im.Derived {
			n++
		}
	}
	return n
}

// Volume returns the backing volume.
func (w *Warehouse) Volume() *storage.Volume { return w.vol }

// encodeDescriptor serializes an image descriptor to its on-volume XML
// bytes. It is a package variable so tests can force an encode failure
// and exercise Publish's error path.
var encodeDescriptor = func(d Descriptor) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// validate runs the publish-time checks shared by seed and derived
// publications, filling im.Guest from a replay when unset.
func (w *Warehouse) validate(im *Image) error {
	if im.Name == "" {
		return fmt.Errorf("warehouse: image needs a name")
	}
	if _, dup := w.images[im.Name]; dup {
		return fmt.Errorf("warehouse: image %q already published", im.Name)
	}
	if err := im.Hardware.Validate(); err != nil {
		return fmt.Errorf("warehouse: image %q: %w", im.Name, err)
	}
	if im.Backend != BackendVMware && im.Backend != BackendUML {
		return fmt.Errorf("warehouse: image %q: unknown backend %q", im.Name, im.Backend)
	}
	if im.Disk == nil {
		return fmt.Errorf("warehouse: image %q has no disk", im.Name)
	}
	// Consistency: replaying the recorded actions must reproduce the
	// recorded guest state's identity (same OS), catching descriptors
	// that drifted from their content.
	replayed, err := actions.Replay(im.Performed)
	if err != nil {
		return fmt.Errorf("warehouse: image %q history does not replay: %w", im.Name, err)
	}
	if im.Guest == nil {
		im.Guest = replayed
	} else if im.Guest.OS != replayed.OS {
		return fmt.Errorf("warehouse: image %q records OS %q but history yields %q",
			im.Name, im.Guest.OS, replayed.OS)
	}
	return nil
}

// register books the image into the store and updates the gauges.
func (w *Warehouse) register(im *Image, accounted int64) {
	im.bytes = accounted
	w.bytesUsed += accounted
	w.images[im.Name] = im
	w.mPublishes.Inc()
	w.gImages.Set(int64(len(w.images)))
	w.gDerived.Set(int64(w.DerivedCount()))
	w.gBytesUsed.Set(w.BytesUsed())
}

// Publish registers a seed golden image and lays its state files down
// on the warehouse volume. Publication is the paper's off-line "golden
// machine definition" step, performed by installers before plants serve
// requests, so no virtual time is charged. The descriptor is encoded
// before any file is laid down, so an encode failure leaves the volume
// untouched.
func (w *Warehouse) Publish(im *Image) error {
	if im.Derived {
		return fmt.Errorf("warehouse: image %q is derived; publish it through PublishDerived", im.Name)
	}
	if err := w.validate(im); err != nil {
		return err
	}

	// Stamp paths and checksums before encoding: the descriptor's
	// integrity section records them. Nothing touches the volume until
	// the encode succeeds, so an encode failure leaves it untouched.
	dir := "golden/" + im.Name + "/"
	im.ConfigPath = dir + "vm.cfg"
	im.RedoPath = dir + "base.redo"
	if im.Backend == BackendVMware {
		im.MemImagePath = dir + "mem.vmss"
	}
	// Extents are content-addressed: each slot resolves to the canonical
	// path of its (size, content) key, so byte-identical extents — the
	// all-zero spans of sparse installer images, across every seed — land
	// on one shared physical copy. Paths and sums are stamped before the
	// encode; the store references (which lay the files) are taken after,
	// so an encode failure still leaves the volume untouched.
	im.ExtentPaths = nil
	extent := im.Disk.Base().SizeBytes() / int64(DiskSpanFiles)
	for i := 0; i < DiskSpanFiles; i++ {
		key := extentKey(extent, im.Disk.Base().ExtentContentHash(i))
		im.ExtentPaths = append(im.ExtentPaths, extentPath(key))
	}
	im.stampSums(nil)
	blob, err := encodeDescriptor(im.Descriptor())
	if err != nil {
		return fmt.Errorf("warehouse: image %q descriptor: %w", im.Name, err)
	}
	descPath := im.descriptorPath()
	im.Sums[descPath] = artifactSum(descPath, int64(len(blob)), 0)

	for i := 0; i < DiskSpanFiles; i++ {
		if w.killpoint("publish", i) {
			// kill -9 between store operations: references taken so far
			// are journaled, the image never registers; Restart's
			// reconciliation releases the orphans.
			return fmt.Errorf("warehouse: daemon killed publishing %q (extent %d)", im.Name, i)
		}
		w.acquireExtent(extent, im.Disk.Base().ExtentContentHash(i))
	}
	w.vol.WriteMetaSum(im.ConfigPath, configBytes, im.Sums[im.ConfigPath])
	w.vol.WriteMetaSum(im.RedoPath, im.Disk.RedoBytes(), im.Sums[im.RedoPath])
	if im.MemImagePath != "" {
		w.vol.WriteMetaSum(im.MemImagePath, im.MemImageBytes(), im.Sums[im.MemImagePath])
	}
	w.vol.WriteMetaSum(descPath, int64(len(blob)), im.Sums[descPath])
	// Extent bytes are accounted by the store (deduplicated), not per
	// image: a seed's accounted bytes are its private state only.
	w.register(im, configBytes+im.Disk.RedoBytes()+im.MemImageBytes()+int64(len(blob)))
	w.journalEvent(journal.ImagePublish, im.Name, map[string]string{"origin": "seed"})
	if w.faults.Should(integritySite, fault.TornWrite, "publish") {
		w.corruptPath(im.RedoPath)
	}
	return nil
}

// configBytes is the size of a golden machine's VM configuration file.
const configBytes = 2 * 1024

// derivedStateBytes is the volume space a derived publication needs:
// everything but the disk extents, which stay shared with the parent.
func derivedStateBytes(im *Image, descriptorLen int) int64 {
	return configBytes + im.CheckpointBytes() + int64(descriptorLen)
}

// PublishDerived registers a derived golden image — a copy-on-write
// checkpoint of a configured clone that the learning loop publishes
// back so future similar DAGs clone instead of reconfiguring. The
// derived image shares its parent's disk extents (only config, redo,
// memory state and descriptor are laid down) and holds a reference on
// the parent for its lifetime. When a capacity budget is set and the
// newcomer does not fit, the lowest-utility unreferenced derived image
// is retired until it does; seed images are never evicted, and if
// nothing can be retired the publication is refused.
func (w *Warehouse) PublishDerived(im *Image, now time.Duration) error {
	if !im.Derived || im.Parent == "" {
		return fmt.Errorf("warehouse: image %q is not marked derived", im.Name)
	}
	parent, ok := w.images[im.Parent]
	if !ok {
		return fmt.Errorf("warehouse: derived image %q: no parent %q", im.Name, im.Parent)
	}
	if parent.Derived {
		return fmt.Errorf("warehouse: derived image %q: parent %q is itself derived", im.Name, im.Parent)
	}
	if im.Backend != parent.Backend {
		return fmt.Errorf("warehouse: derived image %q backend %q differs from parent's %q",
			im.Name, im.Backend, parent.Backend)
	}
	if err := w.validate(im); err != nil {
		return err
	}

	dir := "golden/" + im.Name + "/"
	im.ConfigPath = dir + "vm.cfg"
	im.RedoPath = dir + "base.redo"
	if im.Backend == BackendVMware {
		im.MemImagePath = dir + "mem.vmss"
	}
	// The checkpoint is copy-on-write: clones of the derived image read
	// base blocks from the parent's extent files.
	im.ExtentPaths = append([]string(nil), parent.ExtentPaths...)
	im.stampSums(parent)
	blob, err := encodeDescriptor(im.Descriptor())
	if err != nil {
		return fmt.Errorf("warehouse: image %q descriptor: %w", im.Name, err)
	}
	descPath := im.descriptorPath()
	im.Sums[descPath] = artifactSum(descPath, int64(len(blob)), 0)
	need := derivedStateBytes(im, len(blob))
	if w.capacity > 0 {
		for w.BytesUsed()+need > w.capacity {
			if err := w.retireOne(); err != nil {
				return fmt.Errorf("warehouse: no room for derived image %q (%d of %d bytes used): %w",
					im.Name, w.BytesUsed(), w.capacity, err)
			}
		}
	}

	w.vol.WriteMetaSum(im.ConfigPath, configBytes, im.Sums[im.ConfigPath])
	w.vol.WriteMetaSum(im.RedoPath, im.Disk.RedoBytes(), im.Sums[im.RedoPath])
	if im.MemImagePath != "" {
		w.vol.WriteMetaSum(im.MemImagePath, im.MemImageBytes(), im.Sums[im.MemImagePath])
	}
	w.vol.WriteMetaSum(descPath, int64(len(blob)), im.Sums[descPath])
	parent.Ref()
	im.lastUsed = now
	w.register(im, need)
	w.journalEvent(journal.ImagePublish, im.Name,
		map[string]string{"origin": "derived", "parent": im.Parent})
	if w.faults.Should(integritySite, fault.TornWrite, "publish") {
		w.corruptPath(im.RedoPath)
	}
	return nil
}

// retireOne evicts the retirable derived image with the lowest utility
// (summed match scores of its uses), breaking ties toward the least
// recently used, then the lexicographically smallest name. Seed images
// and images with live clones are never candidates.
func (w *Warehouse) retireOne() error {
	var victim *Image
	for _, n := range w.List() {
		im := w.images[n]
		if !im.Derived || im.refs > 0 {
			continue
		}
		// A quarantined image is mid-repair: its lifecycle belongs to the
		// scrubber (repaired, or retired at the repair limit), not to
		// capacity pressure — evicting it here would race the repair.
		if w.IsQuarantined(n) {
			continue
		}
		if victim == nil ||
			im.scoreSum < victim.scoreSum ||
			(im.scoreSum == victim.scoreSum && im.lastUsed < victim.lastUsed) {
			victim = im
		}
	}
	if victim == nil {
		return fmt.Errorf("every derived image is referenced")
	}
	w.unregister(victim)
	w.retired++
	w.mRetirements.Inc()
	return nil
}

// Retirements reports how many derived images capacity pressure has
// evicted.
func (w *Warehouse) Retirements() int64 { return w.retired }

// NoteUse records that a creation cloned the named image with the
// given match score, feeding utility-based retirement.
func (w *Warehouse) NoteUse(name string, score int, now time.Duration) {
	im, ok := w.images[name]
	if !ok {
		return
	}
	// An unservable image saves no work: a use landing during quarantine
	// (a creation that bound just before the quarantine did) must not
	// inflate its retirement score.
	if w.IsQuarantined(name) {
		return
	}
	im.uses++
	im.scoreSum += score
	im.lastUsed = now
}

// Remove retires a golden image, deleting its state files from the
// warehouse volume. An image with live clones cannot be removed: their
// virtual disks hold soft links into its extents. Removal is
// idempotent over partial failures: files already gone are skipped, so
// a retry after a crashed or interrupted removal completes instead of
// wedging on the first missing path.
func (w *Warehouse) Remove(name string) error {
	im, ok := w.images[name]
	if !ok {
		return fmt.Errorf("warehouse: no image %q", name)
	}
	if im.refs > 0 {
		return fmt.Errorf("warehouse: image %q has %d live clones", name, im.refs)
	}
	w.unregister(im)
	return nil
}

// unregister sweeps an image's private state files off the volume
// (best-effort: already-missing files are skipped) and unbooks it. A
// derived image's extent files belong to its parent and are left alone;
// the parent reference taken at publication is released. A seed's
// extents are store references: each is released (the store deletes the
// physical copy — and its replica mirror — only when the last image
// referencing that content lets go).
func (w *Warehouse) unregister(im *Image) {
	paths := []string{im.ConfigPath, im.RedoPath, "golden/" + im.Name + "/descriptor.xml"}
	if im.MemImagePath != "" {
		paths = append(paths, im.MemImagePath)
	}
	for _, p := range paths {
		if p == "" || !w.vol.Exists(p) {
			continue
		}
		// Delete only fails on missing paths, which the guard excludes.
		_ = w.vol.Delete(p)
	}
	if im.Derived {
		if parent, ok := w.images[im.Parent]; ok {
			// The publication-time reference; the parent outlives every
			// derived child, so it is always still registered here.
			_ = parent.Unref()
		}
	}
	w.bytesUsed -= im.bytes
	delete(w.images, im.Name)
	w.qmu.Lock()
	delete(w.quarantine, im.Name)
	delete(w.repairFails, im.Name)
	qn := len(w.quarantine)
	w.qmu.Unlock()
	w.gQuarantine.Set(int64(qn))
	w.cache.drop(im.Name)
	w.gCacheSize.Set(int64(w.cache.order.Len()))
	w.gImages.Set(int64(len(w.images)))
	w.gDerived.Set(int64(w.DerivedCount()))
	w.journalEvent(journal.ImageRetire, im.Name, nil)
	if !im.Derived {
		for i, p := range im.ExtentPaths {
			if w.killpoint("retire", i) {
				// kill -9 mid-retire: the retire record is durable but
				// some references were never released; Restart's
				// reconciliation releases them as orphans.
				return
			}
			w.releaseExtentPath(p)
		}
	}
	w.gBytesUsed.Set(w.BytesUsed())
}

// Lookup returns a published image.
func (w *Warehouse) Lookup(name string) (*Image, bool) {
	im, ok := w.images[name]
	w.mLookups.Inc()
	if !ok {
		w.mLookupMisses.Inc()
	}
	return im, ok
}

// List returns all image names, sorted.
func (w *Warehouse) List() []string {
	out := make([]string, 0, len(w.images))
	for n := range w.images {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Candidates returns the matcher's view of every image suited to the
// given backend ("" means any), in deterministic order. Quarantined
// images are invisible to matching: no new creation may bind to state
// under suspicion.
func (w *Warehouse) Candidates(backend string) []match.Candidate {
	var out []match.Candidate
	for _, n := range w.List() {
		im := w.images[n]
		if backend != "" && im.Backend != backend {
			continue
		}
		if w.IsQuarantined(n) {
			continue
		}
		out = append(out, im.Candidate())
	}
	return out
}

// BuildGolden constructs a golden image in memory: it replays the given
// configuration history onto a blank guest, builds the golden disk with
// its configuration delta in a frozen redo log, and returns the
// unpublished image. The caller publishes it.
func BuildGolden(name string, hw core.HardwareSpec, backend string, performed []dag.Action) (*Image, error) {
	guest, err := actions.Replay(performed)
	if err != nil {
		return nil, fmt.Errorf("warehouse: golden %q: %w", name, err)
	}
	base, err := vdisk.NewImage(name+"-base", hw.DiskMB, DiskSpanFiles)
	if err != nil {
		return nil, err
	}
	disk := vdisk.NewDisk(name, base)
	// The configuration session dirtied some blocks: one per performed
	// action plus a marker, so clones have observable content.
	for i := range performed {
		blk := make([]byte, vdisk.BlockSize)
		copy(blk, fmt.Sprintf("golden %s action %d (%s)", name, i, performed[i].Op))
		if err := disk.WriteBlock(int64(i), blk); err != nil {
			return nil, err
		}
	}
	disk.Freeze()
	return &Image{
		Name:      name,
		Hardware:  hw,
		Backend:   backend,
		Performed: performed,
		Guest:     guest,
		Disk:      disk,
	}, nil
}

// DerivedName mints the warehouse key for a derived image from the DAG
// fingerprint of its configuration history: two VMs configured through
// the same action sequence yield the same name, so the learning loop
// publishes each distinct configuration once.
func DerivedName(backend string, history []dag.Action) string {
	h := fnv.New64a()
	for _, a := range history {
		io.WriteString(h, a.Key())
		h.Write([]byte{0})
	}
	return fmt.Sprintf("derived-%s-%012x", backend, h.Sum64()&0xffffffffffff)
}

// BuildDerived reconstructs a derived image from its descriptor
// contents on the warehouse-host side of the publish-image RPC: the
// configuration history is replayed for the guest state, and the disk
// becomes a frozen copy-on-write snapshot over the parent's golden
// disk with one dirty block per action executed beyond the parent's
// history (mirroring what the configuration session wrote). The caller
// publishes the result with PublishDerived.
func BuildDerived(name string, parent *Image, performed []dag.Action) (*Image, error) {
	guest, err := actions.Replay(performed)
	if err != nil {
		return nil, fmt.Errorf("warehouse: derived %q: %w", name, err)
	}
	disk := parent.Disk.Snapshot(name)
	for i := len(parent.Performed); i < len(performed); i++ {
		blk := make([]byte, vdisk.BlockSize)
		copy(blk, fmt.Sprintf("derived %s action %d (%s)", name, i, performed[i].Op))
		if err := disk.WriteBlock(int64(i), blk); err != nil {
			return nil, err
		}
	}
	disk.Freeze()
	return &Image{
		Name:      name,
		Hardware:  parent.Hardware,
		Backend:   parent.Backend,
		Performed: performed,
		Guest:     guest,
		Disk:      disk,
		Derived:   true,
		Parent:    parent.Name,
	}, nil
}
