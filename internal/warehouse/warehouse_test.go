package warehouse

import (
	"encoding/xml"
	"strings"
	"testing"

	"vmplants/internal/actions"
	"vmplants/internal/core"
	"vmplants/internal/storage"
)
import "vmplants/internal/dag"

func act(op string, kv ...string) dag.Action {
	p := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		p[kv[i]] = kv[i+1]
	}
	tgt, _ := actions.DefaultTarget(op)
	return dag.Action{Op: op, Target: tgt, Params: p}
}

func hw() core.HardwareSpec { return core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048} }

func history() []dag.Action {
	return []dag.Action{
		act(actions.OpInstallOS, "distro", "mandrake-8.1"),
		act(actions.OpInstallPackage, "name", "vnc-server"),
	}
}

func newWarehouse() *Warehouse {
	vol := storage.NewVolume("warehouse", storage.NewDevice("nfs", 11e6, 0))
	return New(vol)
}

func TestBuildAndPublish(t *testing.T) {
	w := newWarehouse()
	im, err := BuildGolden("mandrake-ws", hw(), BackendVMware, history())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(im); err != nil {
		t.Fatal(err)
	}
	if im.OS() != "mandrake-8.1" {
		t.Errorf("OS = %q", im.OS())
	}
	// State files on the volume: config, redo, mem image, descriptor,
	// plus one canonical file per distinct extent. A freshly installed
	// sparse image's spans are byte-identical (all zero), so the
	// content-addressed store collapses all 16 slots onto one physical
	// copy.
	distinct := make(map[string]bool)
	for _, p := range im.ExtentPaths {
		distinct[p] = true
	}
	if len(im.ExtentPaths) != DiskSpanFiles {
		t.Errorf("%d extent slots, want %d", len(im.ExtentPaths), DiskSpanFiles)
	}
	if len(distinct) >= DiskSpanFiles {
		t.Errorf("%d distinct extents for an all-zero sparse image, want dedup", len(distinct))
	}
	files := w.Volume().List()
	if len(files) != 3+len(distinct)+1 {
		t.Errorf("%d files: %v", len(files), files)
	}
	memSize, err := w.Volume().Stat(im.MemImagePath)
	if err != nil || memSize != int64(64+MemImageOverheadMB)*1024*1024 {
		t.Errorf("mem image size %d, %v", memSize, err)
	}
	// Extents sum to the disk capacity.
	var ext int64
	for _, p := range im.ExtentPaths {
		n, err := w.Volume().Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		ext += n
	}
	if ext != int64(hw().DiskMB)*1024*1024 {
		t.Errorf("extents total %d", ext)
	}
}

func TestUMLImageHasNoMemImage(t *testing.T) {
	w := newWarehouse()
	im, _ := BuildGolden("uml-ws", hw(), BackendUML, history())
	if err := w.Publish(im); err != nil {
		t.Fatal(err)
	}
	if im.MemImagePath != "" || im.MemImageBytes() != 0 {
		t.Errorf("UML image has memory state: %q %d", im.MemImagePath, im.MemImageBytes())
	}
}

func TestPublishValidation(t *testing.T) {
	w := newWarehouse()
	good, _ := BuildGolden("a", hw(), BackendVMware, history())
	if err := w.Publish(good); err != nil {
		t.Fatal(err)
	}
	// Duplicate name.
	dup, _ := BuildGolden("a", hw(), BackendVMware, history())
	if err := w.Publish(dup); err == nil {
		t.Error("duplicate accepted")
	}
	// Unknown backend.
	bad, _ := BuildGolden("b", hw(), BackendVMware, history())
	bad.Backend = "hyper-z"
	if err := w.Publish(bad); err == nil {
		t.Error("unknown backend accepted")
	}
	// Unreplayable history.
	broken, _ := BuildGolden("c", hw(), BackendVMware, history())
	broken.Performed = []dag.Action{act(actions.OpCreateUser, "name", "u")} // no OS
	if err := w.Publish(broken); err == nil {
		t.Error("unreplayable history accepted")
	}
	// Guest/history drift.
	drift, _ := BuildGolden("d", hw(), BackendVMware, history())
	drift.Guest.OS = "windows-95"
	if err := w.Publish(drift); err == nil {
		t.Error("drifted guest accepted")
	}
	// No name / bad hardware / nil disk.
	if err := w.Publish(&Image{}); err == nil {
		t.Error("empty image accepted")
	}
}

func TestLookupListCandidates(t *testing.T) {
	w := newWarehouse()
	for _, spec := range []struct{ name, backend string }{
		{"z-vmware", BackendVMware}, {"a-vmware", BackendVMware}, {"m-uml", BackendUML},
	} {
		im, _ := BuildGolden(spec.name, hw(), spec.backend, history())
		if err := w.Publish(im); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.List(); len(got) != 3 || got[0] != "a-vmware" {
		t.Errorf("List = %v", got)
	}
	if _, ok := w.Lookup("m-uml"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := w.Lookup("ghost"); ok {
		t.Error("Lookup of ghost succeeded")
	}
	vmw := w.Candidates(BackendVMware)
	if len(vmw) != 2 || vmw[0].ID != "a-vmware" {
		t.Errorf("vmware candidates = %+v", vmw)
	}
	if all := w.Candidates(""); len(all) != 3 {
		t.Errorf("all candidates = %d", len(all))
	}
}

func TestDescriptorXMLRoundTrip(t *testing.T) {
	im, _ := BuildGolden("ws", hw(), BackendVMware, history())
	blob, err := xml.MarshalIndent(im.Descriptor(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "mandrake-8.1") || !strings.Contains(string(blob), "install-os") {
		t.Errorf("descriptor xml:\n%s", blob)
	}
	d, perf, err := ParseDescriptor(blob)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "ws" || d.MemoryMB != 64 || d.OS != "mandrake-8.1" {
		t.Errorf("descriptor = %+v", d)
	}
	if len(perf) != 2 || perf[0].Op != actions.OpInstallOS || perf[0].Params["distro"] != "mandrake-8.1" {
		t.Errorf("performed = %+v", perf)
	}
	// Round-tripped history still replays.
	if _, err := actions.Replay(perf); err != nil {
		t.Errorf("replay: %v", err)
	}
}

func TestParseDescriptorErrors(t *testing.T) {
	if _, _, err := ParseDescriptor([]byte("<<<garbage")); err == nil {
		t.Error("garbage accepted")
	}
	bad := `<golden-machine name="x"><performed><action op="a" target="venus"/></performed></golden-machine>`
	if _, _, err := ParseDescriptor([]byte(bad)); err == nil {
		t.Error("bad target accepted")
	}
}

func TestGoldenDiskIsFrozenWithContent(t *testing.T) {
	im, _ := BuildGolden("ws", hw(), BackendVMware, history())
	layers := im.Disk.Layers()
	if len(layers) != 2 || !layers[0].Frozen() {
		t.Fatalf("golden disk chain: %d layers, frozen=%v", len(layers), layers[0].Frozen())
	}
	b, err := im.Disk.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "install-os") {
		t.Errorf("golden block 0 = %q…", b[:40])
	}
}

func TestCandidateCarriesHistory(t *testing.T) {
	im, _ := BuildGolden("ws", hw(), BackendVMware, history())
	c := im.Candidate()
	if c.ID != "ws" || len(c.Performed) != 2 || c.Hardware.MemoryMB != 64 {
		t.Errorf("candidate = %+v", c)
	}
}
