package workload

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/plant"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/stats"
	"vmplants/internal/telemetry"
)

// ChaosMix is the fault cocktail a chaos run injects, as wildcard rules
// over every plant. Action failures are deliberately absent from the
// default mix: a DAG action exhausting its error policy is the
// request's outcome on every plant, so it is not a fault the shop can
// route around.
type ChaosMix struct {
	// RPCDrop is the probability any shop→plant message is lost.
	RPCDrop float64
	// RPCDelayProb stalls a message by RPCDelay without losing it.
	RPCDelayProb float64
	RPCDelay     time.Duration
	// SlowBidProb stalls a plant's estimate by SlowBidDelay — past the
	// shop's bid timeout, so the round proceeds without it.
	SlowBidProb  float64
	SlowBidDelay time.Duration
	// CloneIO fails a clone's state copy, destroying the partial clone.
	CloneIO float64
	// CrashInCreate crashes the winning plant mid-creation.
	CrashInCreate float64
}

// DefaultChaosMix is the standard cocktail: every fault class at a rate
// high enough that a run of a few dozen requests hits each of them.
func DefaultChaosMix() ChaosMix {
	return ChaosMix{
		RPCDrop:       0.05,
		RPCDelayProb:  0.05,
		RPCDelay:      300 * time.Millisecond,
		SlowBidProb:   0.08,
		SlowBidDelay:  3 * time.Second,
		CloneIO:       0.05,
		CrashInCreate: 0.04,
	}
}

// ChaosOptions configures a chaos run.
type ChaosOptions struct {
	Plants   int // default 8
	Requests int // default 32
	MemoryMB int // default 64
	Mix      *ChaosMix
	// BidTimeout bounds each bidding round (default 1 s virtual).
	BidTimeout time.Duration
	// Breaker is the shop's circuit-breaker config (default threshold 3,
	// cooldown 20 s virtual).
	Breaker *shop.BreakerConfig
	// RestartAfter is the supervisor's crash→restart delay
	// (default 10 s virtual).
	RestartAfter time.Duration
	// ClientRetries bounds how often the client re-submits a request the
	// shop failed transiently (default 8).
	ClientRetries int
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Plants == 0 {
		o.Plants = 8
	}
	if o.Requests == 0 {
		o.Requests = 32
	}
	if o.MemoryMB == 0 {
		o.MemoryMB = 64
	}
	if o.Mix == nil {
		m := DefaultChaosMix()
		o.Mix = &m
	}
	if o.BidTimeout == 0 {
		o.BidTimeout = time.Second
	}
	if o.Breaker == nil {
		o.Breaker = &shop.BreakerConfig{Threshold: 3, Cooldown: 20 * time.Second}
	}
	if o.RestartAfter == 0 {
		o.RestartAfter = 10 * time.Second
	}
	if o.ClientRetries == 0 {
		o.ClientRetries = 8
	}
	return o
}

// ChaosResult reports what a chaos run survived.
type ChaosResult struct {
	Requests      int
	Succeeded     int
	ClientRetries int // request re-submissions after shop-level failure
	Failovers     int64
	DegradedBids  int64
	BreakerOpens  int64
	PlantCrashes  int64
	Recoveries    int64
	RoutesRecov   int // routes shop.Recover re-learned at the end
	Injections    map[string]int64
	CreateSecs    stats.Summary
	OrphanVMs     int // VMs left on plants after every destroy
	LeakedNets    int // host-only network slots never released
	// Fingerprint digests every per-request outcome and injection
	// count; two runs with the same seed must produce identical
	// fingerprints.
	Fingerprint string
}

// RunChaos drives a creation series through a deployment under fault
// injection and verifies the system absorbed every fault: all requests
// eventually succeed (shop-side failover plus bounded client retry),
// recovery rebuilds routing after the shop forgets it, and destroying
// everything leaves zero orphaned VMs and zero leaked host-only
// networks.
func RunChaos(seed int64, opts ChaosOptions) (*ChaosResult, error) {
	opts = opts.withDefaults()
	hub := telemetry.New()

	// One registry for the whole site, with wildcard rules: which plant
	// a fault hits is decided by the deterministic order injection
	// points consult the shared stream.
	reg := fault.NewRegistry(seed + 7919)
	reg.SetTelemetry(hub)
	mix := *opts.Mix
	reg.SetProb(fault.Wildcard, fault.RPCDrop, "", mix.RPCDrop)
	if mix.RPCDelayProb > 0 {
		reg.SetProb(fault.Wildcard, fault.RPCDelay, "", mix.RPCDelayProb)
		reg.SetDelay(fault.Wildcard, fault.RPCDelay, "", mix.RPCDelay)
	}
	if mix.SlowBidProb > 0 {
		reg.SetProb(fault.Wildcard, fault.SlowBid, "", mix.SlowBidProb)
		reg.SetDelay(fault.Wildcard, fault.SlowBid, "", mix.SlowBidDelay)
	}
	reg.SetProb(fault.Wildcard, fault.CloneIO, "", mix.CloneIO)
	reg.SetProb(fault.Wildcard, fault.PlantCrash, "create", mix.CrashInCreate)

	d, err := NewDeployment(Options{
		Plants:      opts.Plants,
		Seed:        seed,
		Telemetry:   hub,
		PlantConfig: plant.Config{Faults: reg},
	})
	if err != nil {
		return nil, err
	}
	d.Shop.BidTimeout = opts.BidTimeout
	d.Shop.Breaker = *opts.Breaker
	for _, h := range d.Handles {
		h.Faults = reg
		h.RestartAfter = opts.RestartAfter
	}

	res := &ChaosResult{Requests: opts.Requests}
	var lines []string // fingerprint material
	var created []core.VMID
	var runErr error
	err = d.Run(func(p *sim.Proc) {
		var secs []float64
		for i := 1; i <= opts.Requests; i++ {
			spec, err := d.WorkspaceSpec(i, opts.MemoryMB)
			if err != nil {
				runErr = err
				return
			}
			start := p.Now()
			var id core.VMID
			for try := 0; ; try++ {
				var cerr error
				id, _, cerr = d.Shop.Create(p, spec)
				if cerr == nil {
					break
				}
				if try >= opts.ClientRetries {
					lines = append(lines, fmt.Sprintf("req %d FAILED %v", i, cerr))
					id = ""
					break
				}
				// Transient wipeout (every bidder down at once): back
				// off and re-submit; supervisors restart crashed
				// daemons meanwhile.
				res.ClientRetries++
				p.Sleep(5 * time.Second)
			}
			if id == "" {
				continue
			}
			elapsed := (p.Now() - start).Seconds()
			secs = append(secs, elapsed)
			created = append(created, id)
			res.Succeeded++
			lines = append(lines, fmt.Sprintf("req %d ok %s route=%s %.6fs", i, id, d.Shop.RouteOf(id), elapsed))
		}
		res.CreateSecs = stats.Summarize(secs)

		// Shop restart: soft routing state gone; Recover re-learns it
		// from plant inventories (restarting any still-crashed plant
		// daemon first, as an operator would).
		for _, pl := range d.Plants {
			pl.Recover(p)
		}
		d.Shop.ForgetRoutes()
		routes, unreachable := d.Shop.Recover(p)
		res.RoutesRecov = routes
		lines = append(lines, fmt.Sprintf("recover routes=%d unreachable=%d", routes, len(unreachable)))

		// Drain the site through the recovered routes; every VM must be
		// reachable and collectable. Destroys ride the same fault mix —
		// a dropped collect times out before reaching the plant and the
		// shop keeps the route, so re-asking is safe.
		for _, id := range created {
			var derr error
			for try := 0; try <= opts.ClientRetries; try++ {
				if derr = d.Shop.Destroy(p, id); derr == nil {
					break
				}
				res.ClientRetries++
				p.Sleep(2 * time.Second)
			}
			if derr != nil {
				lines = append(lines, fmt.Sprintf("destroy %s FAILED %v", id, derr))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}

	// Zero-orphan, zero-leak audit.
	for _, pl := range d.Plants {
		res.OrphanVMs += pl.ActiveVMs()
		nets := pl.Networks()
		res.LeakedNets += nets.Size() - nets.FreeCount()
	}

	res.Failovers = hub.Counter("shop.failovers").Value()
	res.DegradedBids = hub.Counter("shop.degraded_bid_rounds").Value()
	res.BreakerOpens = hub.Counter("shop.breaker_opens").Value()
	res.PlantCrashes = hub.Counter("plant.crashes").Value()
	res.Recoveries = hub.Counter("plant.recoveries").Value()
	res.Injections = reg.Counts()

	lines = append(lines, reg.Summary()...)
	lines = append(lines, fmt.Sprintf("failovers=%d degraded=%d breaker_opens=%d crashes=%d recoveries=%d orphans=%d leaks=%d",
		res.Failovers, res.DegradedBids, res.BreakerOpens, res.PlantCrashes, res.Recoveries, res.OrphanVMs, res.LeakedNets))
	res.Fingerprint = strings.Join(lines, "\n")
	return res, nil
}

// InjectionTotal sums injections across all sites for one fault kind.
func (r *ChaosResult) InjectionTotal(kind fault.Kind) int64 {
	var n int64
	for label, c := range r.Injections {
		parts := strings.SplitN(label, "/", 3)
		if len(parts) >= 2 && parts[1] == string(kind) {
			n += c
		}
	}
	return n
}

// Report renders the run as printable lines.
func (r *ChaosResult) Report() []string {
	out := []string{
		fmt.Sprintf("requests:            %d", r.Requests),
		fmt.Sprintf("succeeded:           %d (%.0f%%)", r.Succeeded, 100*float64(r.Succeeded)/float64(r.Requests)),
		fmt.Sprintf("client retries:      %d", r.ClientRetries),
		fmt.Sprintf("shop failovers:      %d", r.Failovers),
		fmt.Sprintf("degraded bid rounds: %d", r.DegradedBids),
		fmt.Sprintf("breaker opens:       %d", r.BreakerOpens),
		fmt.Sprintf("plant crashes:       %d (recoveries %d)", r.PlantCrashes, r.Recoveries),
		fmt.Sprintf("routes recovered:    %d", r.RoutesRecov),
		fmt.Sprintf("create latency:      %s", r.CreateSecs),
		fmt.Sprintf("orphaned VMs:        %d", r.OrphanVMs),
		fmt.Sprintf("leaked networks:     %d", r.LeakedNets),
	}
	labels := make([]string, 0, len(r.Injections))
	for l := range r.Injections {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		out = append(out, fmt.Sprintf("injected %-28s %d", l, r.Injections[l]))
	}
	return out
}
