package workload

import (
	"testing"

	"vmplants/internal/fault"
)

// The chaos run is the acceptance gate for the whole failure-recovery
// stack: every request must eventually succeed via failover and retry,
// and draining the site must leave nothing behind.
func TestChaosRunCompletesEveryRequest(t *testing.T) {
	res, err := RunChaos(42, ChaosOptions{})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if res.Succeeded != res.Requests {
		t.Fatalf("succeeded %d of %d requests:\n%s", res.Succeeded, res.Requests, res.Fingerprint)
	}
	if res.OrphanVMs != 0 {
		t.Errorf("%d orphaned VMs after drain", res.OrphanVMs)
	}
	if res.LeakedNets != 0 {
		t.Errorf("%d leaked host-only networks after drain", res.LeakedNets)
	}
	if res.RoutesRecov != res.Requests {
		t.Errorf("shop.Recover rebuilt %d routes, want %d", res.RoutesRecov, res.Requests)
	}
	// The default mix is hot enough that a 32-request run must actually
	// have exercised the machinery, or the experiment proves nothing.
	if total := res.InjectionTotal(fault.RPCDrop) + res.InjectionTotal(fault.CloneIO) +
		res.InjectionTotal(fault.PlantCrash) + res.InjectionTotal(fault.SlowBid); total == 0 {
		t.Error("no faults injected; chaos run exercised nothing")
	}
}

func TestChaosRunDeterministicAcrossRuns(t *testing.T) {
	a, err := RunChaos(7, ChaosOptions{Requests: 16})
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	b, err := RunChaos(7, ChaosOptions{Requests: 16})
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same seed diverged:\n--- run 1:\n%s\n--- run 2:\n%s", a.Fingerprint, b.Fingerprint)
	}
	c, err := RunChaos(8, ChaosOptions{Requests: 16})
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Error("different seeds produced identical fingerprints")
	}
}
