package workload

import (
	"fmt"
	"sort"
	"strings"

	"vmplants/internal/core"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/stats"
	"vmplants/internal/telemetry"
	"vmplants/internal/vdisk"
	"vmplants/internal/warehouse"
)

// The clone-mode comparison measures what lazy cloning buys on the
// creation critical path: the same request stream is replayed through
// two fresh same-seed deployments, one cloning by full copy (the
// 2 GB-per-clone floor) and one cloning lazily (only config + redo +
// memory before the resume, extents hydrated behind the running VM).
// The shop mints VMIDs deterministically, so the two runs create the
// same VMs and their end-state disks must hash byte-identically once
// hydration converges.

// CloneModeRun is one clone mode's measurement over a fresh deployment.
type CloneModeRun struct {
	Mode       vdisk.CloneMode
	ResumeSecs []float64 // client-observed creation latency per request
	Hashes     map[core.VMID]uint64
	Hydrations []plant.HydrationStats

	DemandFaults    int64
	HydratedExtents int64
	HydrationLag    stats.Summary // background extent lag behind the resume
	ExtentStats     warehouse.ExtentStats
	AllHydrated     bool

	// Fingerprint digests every observable of the run; equal
	// fingerprints across same-seed reruns mean lazy hydration
	// (demand faults included) is deterministic.
	Fingerprint string
}

func runCloneMode(seed int64, n, memMB int, mode vdisk.CloneMode) (*CloneModeRun, error) {
	hub := telemetry.New()
	d, err := NewDeployment(Options{
		Plants:        4,
		Seed:          seed,
		GoldenSizesMB: []int{memMB},
		Telemetry:     hub,
		PlantConfig:   plant.Config{CloneMode: mode},
	})
	if err != nil {
		return nil, err
	}
	r := &CloneModeRun{Mode: mode, Hashes: make(map[core.VMID]uint64)}
	var ids []core.VMID
	var buildErr error
	err = d.Run(func(p *sim.Proc) {
		for i := 1; i <= n; i++ {
			spec, err := d.WorkspaceSpec(i, memMB)
			if err != nil {
				buildErr = err
				return
			}
			start := p.Now()
			id, _, err := d.Shop.Create(p, spec)
			if err != nil {
				buildErr = err
				return
			}
			r.ResumeSecs = append(r.ResumeSecs, (p.Now() - start).Seconds())
			ids = append(ids, id)
		}
	})
	if err != nil {
		return nil, err
	}
	if buildErr != nil {
		return nil, buildErr
	}
	// d.Run drained the kernel, so every background hydrator has
	// finished: the hashes below are converged end states.
	for _, id := range ids {
		for _, pl := range d.Plants {
			if vm, ok := pl.VM(id); ok {
				r.Hashes[id] = vm.Disk().ContentHash()
			}
		}
	}
	r.AllHydrated = true
	for _, pl := range d.Plants {
		r.Hydrations = append(r.Hydrations, pl.HydrationLog()...)
		if !pl.AllHydrated() {
			r.AllHydrated = false
		}
	}
	sort.Slice(r.Hydrations, func(i, j int) bool { return r.Hydrations[i].VMID < r.Hydrations[j].VMID })
	r.DemandFaults = hub.Counter("plant.demand_faults").Value()
	r.HydratedExtents = hub.Counter("plant.hydrated_extents").Value()
	r.HydrationLag = hub.Histogram("plant.hydration_lag_secs").Snapshot()
	r.ExtentStats = d.Warehouse.ExtentStatsNow()

	var lines []string
	for i, id := range ids {
		lines = append(lines, fmt.Sprintf("vm=%s resume=%.6f hash=%016x", id, r.ResumeSecs[i], r.Hashes[id]))
	}
	for _, hs := range r.Hydrations {
		lines = append(lines, fmt.Sprintf("hyd vm=%s extents=%d faults=%d resume=%.6f complete=%.6f aborted=%v",
			hs.VMID, hs.Extents, hs.DemandFaults, hs.ResumeSecs, hs.CompleteSecs, hs.Aborted))
	}
	lines = append(lines, fmt.Sprintf("extents entries=%d refs=%d logical=%d physical=%d",
		r.ExtentStats.Entries, r.ExtentStats.Refs, r.ExtentStats.LogicalBytes, r.ExtentStats.PhysicalBytes))
	r.Fingerprint = strings.Join(lines, "\n")
	return r, nil
}

// CloneComparison is the lazy-vs-eager measurement reported by the
// pipeline experiment.
type CloneComparison struct {
	VMs      int
	MemoryMB int

	Eager *CloneModeRun // vdisk.CloneByCopy — the full-copy floor
	Lazy  *CloneModeRun // vdisk.CloneByLazy

	EagerResume  stats.Summary // creation latency under full copy
	LazyResume   stats.Summary // creation latency under lazy cloning
	LazyComplete stats.Summary // creation start → last extent hydrated

	// ResumeSpeedup is the eager p50 resume latency over the lazy p50:
	// how far laziness pushes the critical path below the copy floor.
	ResumeSpeedup float64

	// DedupRatio and SavedBytes snapshot the lazy run's extent store:
	// logical bytes referenced over physical bytes stored.
	DedupRatio float64
	SavedBytes int64

	// HashesMatch reports the two runs' per-VM end-state disks hashed
	// byte-identically; AllHydrated that every lazy clone converged;
	// DeterminismOK that a same-seed lazy rerun was byte-identical.
	HashesMatch   bool
	AllHydrated   bool
	DeterminismOK bool
}

// RunCloneComparison replays the same n-request stream under eager
// full-copy and lazy cloning (plus a lazy same-seed rerun for the
// determinism check) and compares critical-path latency and end state.
func RunCloneComparison(seed int64, n, memMB int) (*CloneComparison, error) {
	eager, err := runCloneMode(seed, n, memMB, vdisk.CloneByCopy)
	if err != nil {
		return nil, err
	}
	lazy, err := runCloneMode(seed, n, memMB, vdisk.CloneByLazy)
	if err != nil {
		return nil, err
	}
	again, err := runCloneMode(seed, n, memMB, vdisk.CloneByLazy)
	if err != nil {
		return nil, err
	}
	c := &CloneComparison{VMs: n, MemoryMB: memMB, Eager: eager, Lazy: lazy}
	c.EagerResume = stats.Summarize(eager.ResumeSecs)
	c.LazyResume = stats.Summarize(lazy.ResumeSecs)
	var completes []float64
	for _, hs := range lazy.Hydrations {
		completes = append(completes, hs.CompleteSecs)
	}
	c.LazyComplete = stats.Summarize(completes)
	if c.LazyResume.P50 > 0 {
		c.ResumeSpeedup = c.EagerResume.P50 / c.LazyResume.P50
	}
	c.DedupRatio = lazy.ExtentStats.DedupRatio()
	c.SavedBytes = lazy.ExtentStats.SavedBytes()
	c.HashesMatch = len(eager.Hashes) == len(lazy.Hashes)
	for id, h := range eager.Hashes {
		if lazy.Hashes[id] != h {
			c.HashesMatch = false
		}
	}
	c.AllHydrated = lazy.AllHydrated
	c.DeterminismOK = lazy.Fingerprint == again.Fingerprint
	return c, nil
}

// Report renders the comparison as printable lines.
func (c *CloneComparison) Report() []string {
	return []string{
		fmt.Sprintf("%d VMs of %d MB, eager full-copy vs lazy hydration:", c.VMs, c.MemoryMB),
		fmt.Sprintf("eager resume p50: %7.1f s   (full-copy floor)", c.EagerResume.P50),
		fmt.Sprintf("lazy resume p50:  %7.1f s   (%.1f× faster to a usable VM)", c.LazyResume.P50, c.ResumeSpeedup),
		fmt.Sprintf("lazy complete p50:%7.1f s   (last extent hydrated)", c.LazyComplete.P50),
		fmt.Sprintf("demand faults: %d, hydrated extents: %d, hydration lag p90: %.1f s",
			c.Lazy.DemandFaults, c.Lazy.HydratedExtents, c.Lazy.HydrationLag.P90),
		fmt.Sprintf("extent store: %d logical MB → %d physical MB (%.1f× dedup, %d MB saved)",
			c.Lazy.ExtentStats.LogicalBytes>>20, c.Lazy.ExtentStats.PhysicalBytes>>20,
			c.DedupRatio, c.SavedBytes>>20),
		fmt.Sprintf("end-state hashes identical: %v; hydration converged: %v; lazy rerun byte-identical: %v",
			c.HashesMatch, c.AllHydrated, c.DeterminismOK),
	}
}
