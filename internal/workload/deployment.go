package workload

import (
	"fmt"
	"time"

	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/cost"
	"vmplants/internal/plant"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
	"vmplants/internal/warehouse"
)

// Options configures a simulated deployment.
type Options struct {
	// Plants is the number of cluster nodes, one VMPlant each
	// (paper §4.2: 8).
	Plants int
	// Seed drives all randomness.
	Seed int64
	// GoldenSizesMB selects the golden machines to publish, one In-VIGO
	// workspace image per memory size (paper: 32, 64, 256).
	GoldenSizesMB []int
	// GoldenDiskMB is each golden disk's capacity (paper: 2 GB).
	GoldenDiskMB int
	// Backend selects the golden images' production line.
	Backend string
	// PublishBlank additionally publishes a blank (no-OS) image per
	// size, the fallback source for the no-partial-matching ablation.
	PublishBlank bool
	// CostModelName picks the bidding model; the prototype used
	// "free-memory" (§4.1), the §3.4 walk-through "network+compute".
	CostModelName string
	// PlantConfig is applied to every plant (cost model is overridden
	// by CostModelName when set).
	PlantConfig plant.Config
	// ClusterParams overrides the testbed calibration (zero value =
	// cluster.DefaultParams()).
	ClusterParams *cluster.Params
	// Telemetry receives spans and metrics from the whole deployment
	// (kernel, warehouse, every plant, shop); nil disables.
	Telemetry *telemetry.Hub
	// Kernel, when set, makes the deployment join an existing simulation
	// kernel instead of creating its own — how a federation experiment
	// runs several cells in one virtual timeline. Each deployment still
	// gets its own testbed (and so its own NFS server: cells shard
	// storage bandwidth the way separate sites do).
	Kernel *sim.Kernel
	// CellName names the shop (default "shop"). In a federation every
	// cell needs a distinct shop name; plant names are qualified with it
	// too, since every testbed repeats node00, node01, ….
	CellName string
	// StandbyPlants holds the last N plants out of the shop's initial
	// rotation: built and ready, but not bidding. They are the fleet
	// controller's provisioning pool — scale-up hands them to the shop
	// one at a time. Must be less than Plants.
	StandbyPlants int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Plants == 0 {
		o.Plants = 8
	}
	if len(o.GoldenSizesMB) == 0 {
		o.GoldenSizesMB = []int{32, 64, 256}
	}
	if o.GoldenDiskMB == 0 {
		o.GoldenDiskMB = 2048
	}
	if o.Backend == "" {
		o.Backend = warehouse.BackendVMware
	}
	if o.CostModelName == "" {
		o.CostModelName = "free-memory"
	}
	if o.CellName == "" {
		o.CellName = "shop"
	}
	return o
}

// Deployment is a fully wired simulated site.
type Deployment struct {
	Opts      Options
	Kernel    *sim.Kernel
	Testbed   *cluster.Testbed
	Warehouse *warehouse.Warehouse
	Plants    []*plant.Plant
	Handles   []*shop.LocalHandle
	Shop      *shop.Shop
}

// GoldenName returns the published image name for a memory size.
func GoldenName(memMB int, backend string) string {
	return fmt.Sprintf("invigo-%s-%dmb", backend, memMB)
}

// NewDeployment builds the simulated site: testbed, warehouse with the
// golden workspace images, one plant per node, and a shop in front.
func NewDeployment(opts Options) (*Deployment, error) {
	opts = opts.withDefaults()
	k := opts.Kernel
	if k == nil {
		k = sim.NewKernel()
		k.SetTelemetry(opts.Telemetry)
	}
	params := cluster.DefaultParams()
	if opts.ClusterParams != nil {
		params = *opts.ClusterParams
	}
	tb := cluster.NewTestbed(k, opts.Plants, params, opts.Seed)
	wh := warehouse.New(tb.Warehouse)
	wh.SetTelemetry(opts.Telemetry)
	for _, mem := range opts.GoldenSizesMB {
		hw := core.HardwareSpec{Arch: "x86", MemoryMB: mem, DiskMB: opts.GoldenDiskMB}
		im, err := warehouse.BuildGolden(GoldenName(mem, opts.Backend), hw, opts.Backend, InVigoGoldenHistory())
		if err != nil {
			return nil, err
		}
		if err := wh.Publish(im); err != nil {
			return nil, err
		}
		if opts.PublishBlank {
			blank, err := warehouse.BuildGolden(fmt.Sprintf("blank-%s-%dmb", opts.Backend, mem), hw, opts.Backend, nil)
			if err != nil {
				return nil, err
			}
			if err := wh.Publish(blank); err != nil {
				return nil, err
			}
		}
	}
	model, err := cost.ByName(opts.CostModelName)
	if err != nil {
		return nil, err
	}
	d := &Deployment{Opts: opts, Kernel: k, Testbed: tb, Warehouse: wh}
	var phs []shop.PlantHandle
	for _, node := range tb.Nodes {
		cfg := opts.PlantConfig
		cfg.CostModel = model
		cfg.Telemetry = opts.Telemetry
		pname := node.Name()
		if opts.CellName != "shop" {
			pname = opts.CellName + "/" + pname
		}
		pl := plant.New(pname, node, wh, cfg)
		h := shop.NewLocalHandle(pl)
		d.Plants = append(d.Plants, pl)
		d.Handles = append(d.Handles, h)
		phs = append(phs, h)
	}
	active := phs
	if opts.StandbyPlants > 0 && opts.StandbyPlants < len(phs) {
		active = phs[:len(phs)-opts.StandbyPlants]
	}
	d.Shop = shop.New(opts.CellName, active, opts.Seed+1)
	d.Shop.SetTelemetry(opts.Telemetry)
	return d, nil
}

// CreationRecord is one client-observed creation.
type CreationRecord struct {
	Seq        int // 1-based request sequence number
	MemoryMB   int
	CreateSecs float64 // client request → shop response (Figure 4)
	CloneSecs  float64 // PPP clone latency from the classad (Figures 5, 6)
	Plant      string
	VMID       core.VMID
	OK         bool
	Err        string
}

// WorkspaceSpec builds the creation request for one workspace instance.
func (d *Deployment) WorkspaceSpec(seq, memMB int) (*core.Spec, error) {
	user := fmt.Sprintf("user%04d", seq)
	mac := fmt.Sprintf("00:50:56:%02x:%02x:%02x", (seq>>16)&0xff, (seq>>8)&0xff, seq&0xff)
	ip := fmt.Sprintf("10.1.%d.%d", (seq/250)%250, seq%250+1)
	g, err := InVigoDAG(user, mac, ip)
	if err != nil {
		return nil, err
	}
	return &core.Spec{
		Name:     "workspace-" + user,
		Hardware: core.HardwareSpec{Arch: "x86", MemoryMB: memMB, DiskMB: d.Opts.GoldenDiskMB},
		Domain:   "ufl.edu",
		Backend:  d.Opts.Backend,
		Graph:    g,
	}, nil
}

// RunCreationSeries issues n sequential workspace creations of the
// given memory size through the shop — the paper's §4.2 experiment
// shape ("a series of requests, in sequence, for virtual machine
// creation through VMShop") — and returns one record per request.
func (d *Deployment) RunCreationSeries(n, memMB int) ([]CreationRecord, error) {
	records := make([]CreationRecord, 0, n)
	var buildErr error
	d.Kernel.Spawn("client", func(p *sim.Proc) {
		for i := 1; i <= n; i++ {
			spec, err := d.WorkspaceSpec(i, memMB)
			if err != nil {
				buildErr = err
				return
			}
			start := p.Now()
			id, ad, err := d.Shop.Create(p, spec)
			rec := CreationRecord{
				Seq:        i,
				MemoryMB:   memMB,
				CreateSecs: (p.Now() - start).Seconds(),
			}
			if err != nil {
				rec.Err = err.Error()
			} else {
				rec.OK = true
				rec.VMID = id
				rec.Plant = ad.GetString(core.AttrPlant, "")
				rec.CloneSecs = ad.GetReal(core.AttrCloneSecs, 0)
			}
			records = append(records, rec)
		}
	})
	res := d.Kernel.Run(0)
	if len(res.Stranded) != 0 {
		return nil, fmt.Errorf("workload: stranded processes: %v", res.Stranded)
	}
	if buildErr != nil {
		return nil, buildErr
	}
	return records, nil
}

// Run executes an arbitrary client body inside the deployment's kernel
// to completion.
func (d *Deployment) Run(body func(p *sim.Proc)) error {
	d.Kernel.Spawn("client", body)
	res := d.Kernel.Run(0)
	if len(res.Stranded) != 0 {
		return fmt.Errorf("workload: stranded processes: %v", res.Stranded)
	}
	return nil
}

// Succeeded counts successful records.
func Succeeded(recs []CreationRecord) int {
	n := 0
	for _, r := range recs {
		if r.OK {
			n++
		}
	}
	return n
}

// CreateTimes extracts CreateSecs of successful records.
func CreateTimes(recs []CreationRecord) []float64 {
	var out []float64
	for _, r := range recs {
		if r.OK {
			out = append(out, r.CreateSecs)
		}
	}
	return out
}

// CloneTimes extracts CloneSecs of successful records.
func CloneTimes(recs []CreationRecord) []float64 {
	var out []float64
	for _, r := range recs {
		if r.OK {
			out = append(out, r.CloneSecs)
		}
	}
	return out
}

// TotalVirtualTime reports how much virtual time the deployment's
// kernel has consumed.
func (d *Deployment) TotalVirtualTime() time.Duration { return d.Kernel.Now() }

// DefaultFailProb is the per-request configuration failure probability
// used by the Figure 4–6 runs so that success counts land near the
// paper's (121, 124 and 40 VMs out of 128, 128 and 40 requests).
func DefaultFailProb() map[string]float64 {
	return map[string]float64{"configure-network": 0.03}
}
