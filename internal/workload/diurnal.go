package workload

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/cost"
	"vmplants/internal/fault"
	"vmplants/internal/fleet"
	"vmplants/internal/journal"
	"vmplants/internal/plant"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
)

// The diurnal experiment is the elasticity stack's CI gate: a simulated
// week of load — Zipf-skewed image popularity riding a day/night sine,
// flash crowds, scheduled maintenance windows — against a shop with a
// bounded admission gate and a fleet controller that grows and shrinks
// the plant set. The discrete-event substrate compresses the week into
// seconds of wall clock. The run passes only if the standing SLOs hold
// over the whole week, the fleet actually flexed (scale-ups and
// drain/retires both happened, one retirement crossing a kill -9), no
// VM was orphaned, no virtual network or extent reference leaked, every
// shed request was retryable, and two same-seed runs are byte-identical.

// DiurnalOptions tunes RunDiurnal. Zero values select the defaults.
type DiurnalOptions struct {
	// Days is the simulated horizon (default 7).
	Days int
	// Plants is the testbed size — every node that could ever host a
	// plant (default 6). Standby of them start outside the shop's
	// rotation as the controller's provisioning pool (default 3).
	Plants  int
	Standby int
	// BaseRatePerHour is the day-average arrival rate (default 2).
	BaseRatePerHour float64
	// Amplitude is the sine's swing as a fraction of the base rate, in
	// [0, 1) (default 0.7): peak at 14:00, trough at 02:00.
	Amplitude float64
	// ZipfS is the image-popularity exponent (default 1.3). Daytime
	// ranks the catalog small-first (interactive workspaces); night
	// reverses it (big batch images).
	ZipfS float64
	// SizesMB is the image catalog by memory size (default 32/64/256).
	SizesMB []int
	// HoldMean is the mean VM lifetime before the client collects it
	// (default 4 h, exponentially distributed).
	HoldMean time.Duration
	// FlashCrowds schedules demand spikes: at each offset from the start
	// of the run, FlashCrowdSize extra requests arrive within one
	// minute (defaults: day 1 20:00 and day 4 13:00, 14 requests).
	FlashCrowds    []time.Duration
	FlashCrowdSize int
	// Maintenance schedules plant retirements: at each offset the
	// longest-serving active plant is drained and retired (defaults:
	// day 2 04:00 and day 5 04:00).
	Maintenance []time.Duration
	// KillMidDrain arms a kill -9 on the shop daemon inside the first
	// maintenance drain; the supervisor restarts it from the journal and
	// resumes the drain (default true — set NoKill to disable).
	NoKill bool
	// RestartAfter is the supervisor's restart delay (default 30 s).
	RestartAfter time.Duration
	// ClientRetries bounds per-request resubmissions (default 10);
	// RetryBackoff is the base backoff, doubled per attempt (default 90 s).
	ClientRetries int
	RetryBackoff  time.Duration
	// Admission bounds the shop's front door (default: 4 in flight,
	// 8 queued, shed past a 10-minute projected wait at a 3-minute
	// service estimate).
	Admission shop.AdmissionConfig
	// Fleet tunes the autoscaler (default: 2..Plants plants, 5-minute
	// ticks, 90-minute cooldown, scale up at queue depth 3, shrink
	// after 24 calm ticks).
	Fleet fleet.Config
}

func (o DiurnalOptions) withDefaults() DiurnalOptions {
	if o.Days == 0 {
		o.Days = 7
	}
	if o.Plants == 0 {
		o.Plants = 6
	}
	if o.Standby == 0 {
		o.Standby = 3
	}
	if o.BaseRatePerHour == 0 {
		o.BaseRatePerHour = 2
	}
	if o.Amplitude == 0 {
		o.Amplitude = 0.7
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.3
	}
	if len(o.SizesMB) == 0 {
		o.SizesMB = []int{32, 64, 256}
	}
	if o.HoldMean == 0 {
		o.HoldMean = 4 * time.Hour
	}
	if o.FlashCrowds == nil {
		o.FlashCrowds = []time.Duration{
			44 * time.Hour,  // day 1, 20:00
			109 * time.Hour, // day 4, 13:00
		}
	}
	if o.FlashCrowdSize == 0 {
		o.FlashCrowdSize = 14
	}
	if o.Maintenance == nil {
		o.Maintenance = []time.Duration{
			52 * time.Hour,  // day 2, 04:00
			124 * time.Hour, // day 5, 04:00
		}
	}
	if o.RestartAfter == 0 {
		o.RestartAfter = 30 * time.Second
	}
	if o.ClientRetries == 0 {
		o.ClientRetries = 10
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 90 * time.Second
	}
	if o.Admission.MaxInflight == 0 {
		o.Admission = shop.AdmissionConfig{
			MaxInflight:     4,
			MaxQueue:        6,
			MaxWait:         10 * time.Minute,
			ServiceEstimate: 3 * time.Minute,
		}
	}
	if o.Fleet.MinPlants == 0 {
		o.Fleet = fleet.Config{
			MinPlants:       2,
			MaxPlants:       o.Plants,
			Tick:            5 * time.Minute,
			Cooldown:        30 * time.Minute,
			ScaleUpDepth:    3,
			ScaleUpFailures: 1,
			QuietTicks:      24,
		}
	}
	return o
}

// SmokeDiurnalOptions compresses the run for CI: two days, a hotter
// request stream, one flash crowd and one maintenance window per day.
func SmokeDiurnalOptions() DiurnalOptions {
	return DiurnalOptions{
		Days:            2,
		Plants:          5,
		Standby:         2,
		BaseRatePerHour: 3,
		FlashCrowds:     []time.Duration{20 * time.Hour, 37 * time.Hour},
		FlashCrowdSize:  10,
		Maintenance:     []time.Duration{28 * time.Hour, 42 * time.Hour},
		HoldMean:        2 * time.Hour,
		Admission: shop.AdmissionConfig{
			MaxInflight:     3,
			MaxQueue:        4,
			MaxWait:         10 * time.Minute,
			ServiceEstimate: 3 * time.Minute,
		},
		Fleet: fleet.Config{
			MinPlants:       2,
			MaxPlants:       5,
			Tick:            2 * time.Minute,
			Cooldown:        10 * time.Minute,
			ScaleUpDepth:    2,
			ScaleUpFailures: 1,
			QuietTicks:      45,
		},
	}
}

// DiurnalResult is one run's outcome plus its audits.
type DiurnalResult struct {
	Days      int
	Requests  int
	Succeeded int
	// FailedFinal counts requests abandoned after every retry.
	FailedFinal int
	// Shed counts ErrOverload refusals; NonRetryableSheds counts sheds
	// that were not in the transient class (must be zero — a shed
	// request must always be safe to resubmit).
	Shed              int
	NonRetryableSheds int
	// DestroyFails counts collections abandoned after every retry.
	DestroyFails int

	ScaleUps   int
	ScaleDowns int
	Retired    int
	Migrated   int64

	ShopKills     int64
	ShopRestarts  int64
	ResumedDrains int

	// OrphanVMs counts VMs still hosted anywhere (any plant ever in the
	// fleet, retired ones included) after every client collected.
	OrphanVMs int
	// LeakedNets counts virtual networks still allocated after the last
	// VM was collected; LeakedExtentRefs is extent-store references
	// above the published-catalog baseline.
	LeakedNets       int
	LeakedExtentRefs int

	Objectives []telemetry.ObjectiveStatus
	SLOsHold   bool

	PeakPlants int
	// Fingerprint digests every virtual-time observable; same-seed runs
	// must match byte for byte.
	Fingerprint string

	// Journal is the shop's full write-ahead log and Spans the run's
	// span set — the failure artifacts a red CI job uploads.
	Journal []journal.Record
	Spans   []telemetry.Span
}

// GateViolations lists every acceptance-gate failure (empty = pass).
func (r *DiurnalResult) GateViolations(killed bool) []string {
	var v []string
	check := func(ok bool, format string, args ...interface{}) {
		if !ok {
			v = append(v, fmt.Sprintf(format, args...))
		}
	}
	check(r.SLOsHold, "SLOs violated over the week")
	check(r.ScaleUps >= 2, "scale-ups = %d, want >= 2", r.ScaleUps)
	check(r.Retired >= 2, "drain/retires = %d, want >= 2", r.Retired)
	if killed {
		check(r.ShopKills >= 1, "no shop kill landed mid-drain")
		check(r.ShopRestarts >= 1, "killed shop never restarted")
		check(r.ResumedDrains >= 1, "interrupted drain never resumed")
	}
	check(r.OrphanVMs == 0, "orphaned VMs = %d", r.OrphanVMs)
	check(r.LeakedNets == 0, "leaked virtual networks = %d", r.LeakedNets)
	check(r.LeakedExtentRefs == 0, "leaked extent refs = %d", r.LeakedExtentRefs)
	check(r.Shed > 0, "overload path never exercised (0 sheds)")
	check(r.NonRetryableSheds == 0, "non-retryable sheds = %d", r.NonRetryableSheds)
	check(r.FailedFinal == 0, "requests abandoned = %d", r.FailedFinal)
	check(r.DestroyFails == 0, "collections abandoned = %d", r.DestroyFails)
	return v
}

// Report renders the run as printable lines.
func (r *DiurnalResult) Report() []string {
	out := []string{
		fmt.Sprintf("simulated days:     %d", r.Days),
		fmt.Sprintf("requests:           %d (succeeded %d, abandoned %d)", r.Requests, r.Succeeded, r.FailedFinal),
		fmt.Sprintf("shed at admission:  %d (non-retryable %d)", r.Shed, r.NonRetryableSheds),
		fmt.Sprintf("scale-ups:          %d (peak fleet %d plants)", r.ScaleUps, r.PeakPlants),
		fmt.Sprintf("drain/retires:      %d (controller %d, migrations %d)", r.Retired, r.ScaleDowns, r.Migrated),
		fmt.Sprintf("shop kills:         %d (restarts %d, drains resumed %d)", r.ShopKills, r.ShopRestarts, r.ResumedDrains),
		fmt.Sprintf("orphaned VMs:       %d", r.OrphanVMs),
		fmt.Sprintf("leaked nets:        %d", r.LeakedNets),
		fmt.Sprintf("leaked extent refs: %d", r.LeakedExtentRefs),
		fmt.Sprintf("collect failures:   %d", r.DestroyFails),
	}
	for _, st := range r.Objectives {
		out = append(out, fmt.Sprintf("slo %-16s ok=%-5v value=%.4g bound=%g burn=%.3g (n=%d)",
			st.Name, st.OK, st.Value, st.Bound, st.Burn, st.Samples))
	}
	return out
}

// rate is the diurnal arrival intensity at elapsed virtual time t, in
// arrivals per hour: the base rate swung by a 24-hour sine peaking at
// 14:00 and bottoming at 02:00.
func (o DiurnalOptions) rate(t time.Duration) float64 {
	hour := t.Hours()
	return o.BaseRatePerHour * (1 + o.Amplitude*math.Sin(2*math.Pi*(hour-8)/24))
}

// daytime reports whether the sine is in its positive half at t — the
// interactive half of the popularity mixture.
func (o DiurnalOptions) daytime(t time.Duration) bool {
	hour := math.Mod(t.Hours(), 24)
	return hour >= 8 && hour < 20
}

// RunDiurnal drives the simulated week and audits the fleet's behavior.
func RunDiurnal(seed int64, opts DiurnalOptions) (*DiurnalResult, error) {
	opts = opts.withDefaults()
	hub := telemetry.New()
	hub.Tracer = telemetry.NewTracer(1 << 16)
	reg := fault.NewRegistry(seed + 104729)
	reg.SetTelemetry(hub)

	d, err := NewDeployment(Options{
		Plants:        opts.Plants,
		StandbyPlants: opts.Standby,
		Seed:          seed,
		GoldenSizesMB: opts.SizesMB,
		Telemetry:     hub,
	})
	if err != nil {
		return nil, err
	}
	d.Shop.Faults = reg
	d.Shop.SetAdmission(opts.Admission)

	// Journal: the drain protocol's durability (and the mid-drain kill's
	// recovery) rides the shop's write-ahead log.
	logVol := storage.NewVolume("shop-log", storage.NewDevice("shop-log-disk", 64<<20, 100*time.Microsecond))
	jnl := journal.Open(logVol, "journal/shop")
	jnl.SetTelemetry(hub)
	d.Shop.SetJournal(jnl)

	hub.M().ResetHistograms()
	hub.SLO = telemetry.NewSLOEngine(hub.M(), DefaultSLOObjectives()...)

	// The provisioning pool: standby plants first, then fresh plants on
	// nodes whose previous tenant retired (a maintenance window returns
	// its node to service under a new generation name — retirement is
	// forever for a plant name, not for the hardware).
	model, err := cost.ByName(d.Opts.CostModelName)
	if err != nil {
		return nil, err
	}
	allPlants := append([]*plant.Plant(nil), d.Plants...)
	tenant := make([]string, len(d.Testbed.Nodes)) // node index → current plant name
	for i, pl := range d.Plants {
		tenant[i] = pl.Name()
	}
	gen := make([]int, len(d.Testbed.Nodes))
	activeBase := opts.Plants - opts.Standby
	provision := func(p *sim.Proc, idx int) (shop.PlantHandle, error) {
		if idx < opts.Standby {
			return d.Handles[activeBase+idx], nil
		}
		for i, name := range tenant {
			if name != "" && !d.Shop.Retired(name) {
				continue
			}
			gen[i]++
			pname := fmt.Sprintf("%s-g%d", d.Testbed.Nodes[i].Name(), gen[i]+1)
			pl := plant.New(pname, d.Testbed.Nodes[i], d.Warehouse,
				plant.Config{CostModel: model, Telemetry: hub})
			allPlants = append(allPlants, pl)
			tenant[i] = pname
			return shop.NewLocalHandle(pl), nil
		}
		return nil, fmt.Errorf("diurnal: every node occupied")
	}
	c := fleet.New(opts.Fleet, d.Shop, hub, nil, provision)

	baseExtentRefs := d.Warehouse.ExtentStatsNow().Refs

	res := &DiurnalResult{Days: opts.Days}
	var lines []string // fingerprint material
	rng := sim.NewRNG(seed + 7919)
	horizon := time.Duration(opts.Days) * 24 * time.Hour
	rateMax := opts.BaseRatePerHour * (1 + opts.Amplitude)
	pending := 0 // arrivals not yet settled (success held+collected, or failed)

	// One arrival: create with retry/backoff, hold, collect. Runs on its
	// own proc; hold is drawn by the caller to keep the RNG stream in
	// spawn order (deterministic) rather than completion order.
	arrival := func(seq, memMB int, hold time.Duration, label string) {
		d.Kernel.Spawn(fmt.Sprintf("%s-%04d", label, seq), func(ap *sim.Proc) {
			defer func() { pending-- }()
			spec, serr := d.WorkspaceSpec(seq, memMB)
			if serr != nil {
				res.FailedFinal++
				return
			}
			spec.RequestID = fmt.Sprintf("req-%05d", seq)
			var id core.VMID
			for try := 0; ; try++ {
				var cerr error
				id, _, cerr = d.Shop.Create(ap, spec)
				if cerr == nil {
					break
				}
				if errors.Is(cerr, shop.ErrOverload) {
					res.Shed++
					if !errors.Is(cerr, core.ErrTransient) {
						res.NonRetryableSheds++
					}
				}
				if try >= opts.ClientRetries {
					res.FailedFinal++
					lines = append(lines, fmt.Sprintf("req %05d FAILED t=%.0f %v", seq, ap.Now().Seconds(), cerr))
					return
				}
				// Back off harder each attempt; the shop's supervisor (the
				// maintenance proc) owns restarts, clients just wait out a
				// dead or overloaded daemon.
				backoff := opts.RetryBackoff << uint(min(try, 3))
				ap.Sleep(backoff)
			}
			res.Succeeded++
			lines = append(lines, fmt.Sprintf("req %05d ok %s route=%s t=%.0f",
				seq, id, d.Shop.RouteOf(id), ap.Now().Seconds()))
			ap.Sleep(hold)
			for try := 0; ; try++ {
				if derr := d.Shop.Destroy(ap, id); derr == nil {
					return
				}
				if try >= opts.ClientRetries {
					res.DestroyFails++
					lines = append(lines, fmt.Sprintf("req %05d COLLECT-FAILED %s", seq, id))
					return
				}
				ap.Sleep(opts.RetryBackoff)
			}
		})
	}

	var runErr error
	err = d.Run(func(p *sim.Proc) {
		c.Start(p.Kernel())

		// Maintenance windows: drain and retire the longest-serving
		// active plant at each scheduled offset. The first window carries
		// the chaos gate's kill -9: the daemon dies with the drain open,
		// the supervisor restarts it from the journal and resumes.
		for i, at := range opts.Maintenance {
			kill := i == 0 && !opts.NoKill
			p.Kernel().Spawn(fmt.Sprintf("maintenance-%d", i), func(mp *sim.Proc) {
				mp.Sleep(at)
				victim := ""
				for _, h := range d.Shop.Plants() {
					name := h.Name()
					if d.Shop.Draining(name) {
						continue
					}
					if victim == "" || name < victim {
						victim = name
					}
				}
				if victim == "" {
					return
				}
				if kill {
					reg.Arm(d.Shop.Name(), fault.DaemonKill, "drain", 1)
				}
				derr := d.Shop.DrainAndRetire(mp, victim)
				if errors.Is(derr, shop.ErrShopDown) {
					mp.Sleep(opts.RestartAfter)
					st, rerr := d.Shop.Restart(mp)
					if rerr != nil {
						runErr = rerr
						return
					}
					lines = append(lines, fmt.Sprintf("maintenance %d: shop restarted replayed=%d routes=%d open_drains=%v",
						i, st.Replayed, st.Routes, d.Shop.OpenDrains()))
					if rerr := d.Shop.ResumeDrains(mp); rerr != nil {
						runErr = rerr
						return
					}
					res.ResumedDrains++
					derr = nil
				}
				if derr != nil {
					runErr = fmt.Errorf("maintenance drain of %s: %w", victim, derr)
					return
				}
				lines = append(lines, fmt.Sprintf("maintenance %d: retired %s t=%.0f", i, victim, mp.Now().Seconds()))
			})
		}

		// Flash crowds: a burst of extra arrivals inside one minute.
		seq := 0
		for i, at := range opts.FlashCrowds {
			offsets := make([]time.Duration, opts.FlashCrowdSize)
			holds := make([]time.Duration, opts.FlashCrowdSize)
			sizes := make([]int, opts.FlashCrowdSize)
			for j := range offsets {
				offsets[j] = time.Duration(rng.Uniform(0, 60)) * time.Second
				holds[j] = time.Duration(rng.Exp(opts.HoldMean.Seconds())) * time.Second
				sizes[j] = opts.SizesMB[rng.Zipf(len(opts.SizesMB), opts.ZipfS)]
			}
			base := opts.Days * 100000 // flash-crowd seqs outside the steady stream's range
			crowd := i
			p.Kernel().Spawn(fmt.Sprintf("flash-%d", i), func(fp *sim.Proc) {
				fp.Sleep(at)
				start := fp.Now()
				for j := range offsets {
					fp.Sleep(start + offsets[j] - fp.Now())
					pending++
					arrival(base+crowd*1000+j, sizes[j], holds[j], "flash")
				}
			})
		}

		// The steady stream: a non-homogeneous Poisson process by
		// thinning against the peak rate.
		for p.Now() < horizon {
			p.Sleep(time.Duration(rng.Exp(3600/rateMax)) * time.Second)
			if p.Now() >= horizon {
				break
			}
			if rng.Float64() >= opts.rate(p.Now())/rateMax {
				continue
			}
			seq++
			ranked := append([]int(nil), opts.SizesMB...)
			if !opts.daytime(p.Now()) {
				for l, r := 0, len(ranked)-1; l < r; l, r = l+1, r-1 {
					ranked[l], ranked[r] = ranked[r], ranked[l]
				}
			}
			memMB := ranked[rng.Zipf(len(ranked), opts.ZipfS)]
			hold := time.Duration(rng.Exp(opts.HoldMean.Seconds())) * time.Second
			pending++
			arrival(seq, memMB, hold, "arrival")
			if n := len(d.Shop.Plants()); n > res.PeakPlants {
				res.PeakPlants = n
			}
		}
		res.Requests = seq + len(opts.FlashCrowds)*opts.FlashCrowdSize

		// Drain the tail: every arrival settles, every hold collects,
		// every open drain retires.
		for pending > 0 {
			p.Sleep(5 * time.Minute)
		}
		for len(d.Shop.OpenDrains()) > 0 || c.Status().Draining > 0 {
			p.Sleep(time.Minute)
		}
		c.Stop()
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}

	// Audit 1 — fleet flexing.
	st := c.Status()
	res.ScaleUps = st.ScaleUps
	res.ScaleDowns = st.ScaleDowns
	if n := len(d.Shop.Plants()); n > res.PeakPlants {
		res.PeakPlants = n
	}
	res.Retired = int(hub.Counter("shop.plant_retirements").Value())
	res.Migrated = hub.Counter("shop.drain_migrations").Value()
	res.ShopKills = hub.Counter("shop.crashes").Value()
	res.ShopRestarts = hub.Counter("shop.restarts").Value()

	// Audit 2 — nothing orphaned, nothing leaked. Every VM was
	// collected, so every plant that ever served (retired ones included)
	// must be empty, every virtual network released, and the extent
	// store back at the published-catalog baseline.
	for _, pl := range allPlants {
		res.OrphanVMs += pl.ActiveVMs()
		nets := pl.Networks()
		res.LeakedNets += nets.Size() - nets.FreeCount()
	}
	res.LeakedExtentRefs = d.Warehouse.ExtentStatsNow().Refs - baseExtentRefs

	// Audit 3 — the standing SLOs over the whole week.
	res.Objectives = hub.SLO.Evaluate(d.Kernel.Now())
	res.SLOsHold = true
	for _, ob := range res.Objectives {
		res.SLOsHold = res.SLOsHold && ob.OK
		lines = append(lines, fmt.Sprintf("slo %s ok=%v value=%.6g bound=%g samples=%d burn=%.6g",
			ob.Name, ob.OK, ob.Value, ob.Bound, ob.Samples, ob.Burn))
	}

	lines = append(lines, fmt.Sprintf(
		"requests=%d ok=%d failed=%d shed=%d scale_ups=%d scale_downs=%d retired=%d migrated=%d kills=%d restarts=%d resumed=%d orphans=%d leaked_nets=%d leaked_refs=%d end=%s",
		res.Requests, res.Succeeded, res.FailedFinal, res.Shed, res.ScaleUps, res.ScaleDowns,
		res.Retired, res.Migrated, res.ShopKills, res.ShopRestarts, res.ResumedDrains,
		res.OrphanVMs, res.LeakedNets, res.LeakedExtentRefs, d.Kernel.Now()))
	res.Fingerprint = strings.Join(lines, "\n")
	res.Journal = jnl.Records()
	res.Spans = hub.T().Spans()
	return res, nil
}
