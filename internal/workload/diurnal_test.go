package workload

import (
	"strings"
	"testing"
)

// TestDiurnalSmokeGate runs the compressed two-day diurnal cycle and
// holds it to the full acceptance gate: SLOs intact, the fleet flexed
// both ways with one retirement crossing a kill -9, nothing orphaned or
// leaked, every shed retryable — and the whole run byte-identically
// reproducible.
func TestDiurnalSmokeGate(t *testing.T) {
	opts := SmokeDiurnalOptions()
	res, err := RunDiurnal(11, opts)
	if err != nil {
		t.Fatalf("diurnal run: %v", err)
	}
	if v := res.GateViolations(true); len(v) != 0 {
		t.Errorf("gate violations:\n  %s", strings.Join(v, "\n  "))
		for _, line := range res.Report() {
			t.Log(line)
		}
	}

	again, err := RunDiurnal(11, opts)
	if err != nil {
		t.Fatalf("diurnal rerun: %v", err)
	}
	if res.Fingerprint != again.Fingerprint {
		a, b := strings.Split(res.Fingerprint, "\n"), strings.Split(again.Fingerprint, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("fingerprints diverge at line %d:\n  run1: %s\n  run2: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("fingerprints differ in length: %d vs %d lines", len(a), len(b))
	}
}
