package workload

import (
	"fmt"

	"vmplants/internal/core"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/stats"
	"vmplants/internal/vdisk"
	"vmplants/internal/warehouse"
)

// SeriesSpec is one golden-machine size's request series (paper §4.2:
// "128 requests for 32MB and 64MB VMs, and 40 requests for 256MB VMs").
type SeriesSpec struct {
	MemoryMB int
	Requests int
}

// PaperSeries returns the paper's three series.
func PaperSeries() []SeriesSpec {
	return []SeriesSpec{{32, 128}, {64, 128}, {256, 40}}
}

// SmokeSeries is a scaled-down variant for fast tests.
func SmokeSeries() []SeriesSpec {
	return []SeriesSpec{{32, 12}, {64, 12}, {256, 8}}
}

// CreationExperiment holds the data behind Figures 4, 5 and 6: one
// request series per golden-machine size, each on a fresh deployment.
type CreationExperiment struct {
	Series  []SeriesSpec
	Records map[int][]CreationRecord // memory size → records
}

// RunCreationExperiment reproduces the paper's §4.2 runs: for each
// series, a fresh 8-plant deployment (memory-based bidding as in the
// prototype), sequential creations through the shop, with the paper's
// observed failure rate injected.
func RunCreationExperiment(seed int64, series []SeriesSpec) (*CreationExperiment, error) {
	exp := &CreationExperiment{Series: series, Records: make(map[int][]CreationRecord)}
	for i, s := range series {
		d, err := NewDeployment(Options{
			Seed:          seed + int64(i)*1000,
			GoldenSizesMB: []int{s.MemoryMB},
			PlantConfig:   plant.Config{FailProb: DefaultFailProb()},
		})
		if err != nil {
			return nil, err
		}
		recs, err := d.RunCreationSeries(s.Requests, s.MemoryMB)
		if err != nil {
			return nil, err
		}
		exp.Records[s.MemoryMB] = recs
	}
	return exp, nil
}

// sizeLabel renders a histogram column header.
func sizeLabel(memMB int) string { return fmt.Sprintf("%d MB", memMB) }

// Figure4 builds the normalized distribution of end-to-end creation
// latencies, bucketed exactly as the paper plots them (10 s buckets
// centered at 5, 15, …).
func (e *CreationExperiment) Figure4() (map[string]*stats.Histogram, []string) {
	hists := make(map[string]*stats.Histogram)
	var order []string
	for _, s := range e.Series {
		h := stats.NewHistogram(0, 10)
		h.AddAll(CreateTimes(e.Records[s.MemoryMB]))
		label := sizeLabel(s.MemoryMB)
		hists[label] = h
		order = append(order, label)
	}
	return hists, order
}

// Figure5 builds the distribution of cloning latencies (5 s buckets).
func (e *CreationExperiment) Figure5() (map[string]*stats.Histogram, []string) {
	hists := make(map[string]*stats.Histogram)
	var order []string
	for _, s := range e.Series {
		h := stats.NewHistogram(0, 5)
		h.AddAll(CloneTimes(e.Records[s.MemoryMB]))
		label := sizeLabel(s.MemoryMB)
		hists[label] = h
		order = append(order, label)
	}
	return hists, order
}

// Figure6 builds cloning time as a function of VM sequence number, one
// series per memory size.
func (e *CreationExperiment) Figure6() []*stats.Series {
	var out []*stats.Series
	for _, s := range e.Series {
		ser := &stats.Series{Name: sizeLabel(s.MemoryMB)}
		for _, r := range e.Records[s.MemoryMB] {
			if r.OK {
				ser.Append(float64(r.Seq), r.CloneSecs)
			}
		}
		out = append(out, ser)
	}
	return out
}

// SummaryBySize reports per-size creation-time summaries.
func (e *CreationExperiment) SummaryBySize() map[int]stats.Summary {
	out := make(map[int]stats.Summary)
	for mem, recs := range e.Records {
		out[mem] = stats.Summarize(CreateTimes(recs))
	}
	return out
}

// CopyBaselineResult is the §4.3 link-vs-copy comparison: the full copy
// of the 2 GB golden disk versus the average cloning time of a 256 MB
// VM ("around 4 times slower than the average cloning time").
type CopyBaselineResult struct {
	FullCopySecs    float64
	AvgClone256Secs float64
	SlowdownFactor  float64
	GoldenDiskBytes int64
	GoldenSpanFiles int
}

// RunCopyBaseline measures both sides of the comparison.
func RunCopyBaseline(seed int64) (*CopyBaselineResult, error) {
	// Side 1: a full explicit copy of the golden disk over NFS.
	d, err := NewDeployment(Options{Seed: seed, GoldenSizesMB: []int{256}})
	if err != nil {
		return nil, err
	}
	im, _ := d.Warehouse.Lookup(GoldenName(256, d.Opts.Backend))
	res := &CopyBaselineResult{
		GoldenDiskBytes: im.Disk.Base().SizeBytes(),
		GoldenSpanFiles: im.Disk.Base().SpanFiles(),
	}
	err = d.Run(func(p *sim.Proc) {
		node := d.Testbed.Nodes[0]
		start := p.Now()
		for i, ext := range im.ExtentPaths {
			if _, err := node.Warehouse().CopyTo(p, ext, node.LocalDisk(), fmt.Sprintf("copy/ext%03d", i), 1); err != nil {
				p.Failf("copy: %v", err)
			}
		}
		res.FullCopySecs = (p.Now() - start).Seconds()
	})
	if err != nil {
		return nil, err
	}

	// Side 2: the average cloning time of 256 MB link clones.
	d2, err := NewDeployment(Options{Seed: seed + 7, GoldenSizesMB: []int{256}})
	if err != nil {
		return nil, err
	}
	recs, err := d2.RunCreationSeries(40, 256)
	if err != nil {
		return nil, err
	}
	res.AvgClone256Secs = stats.Summarize(CloneTimes(recs)).Mean
	if res.AvgClone256Secs > 0 {
		res.SlowdownFactor = res.FullCopySecs / res.AvgClone256Secs
	}
	return res, nil
}

// UMLResult is the §4.3 UML production-line measurement: a 32 MB UML VM
// instantiated via a full reboot averages ≈76 s per clone.
type UMLResult struct {
	Records      []CreationRecord
	CloneSummary stats.Summary
}

// RunUML runs the UML series.
func RunUML(seed int64, requests int) (*UMLResult, error) {
	d, err := NewDeployment(Options{
		Seed:          seed,
		GoldenSizesMB: []int{32},
		Backend:       warehouse.BackendUML,
	})
	if err != nil {
		return nil, err
	}
	recs, err := d.RunCreationSeries(requests, 32)
	if err != nil {
		return nil, err
	}
	return &UMLResult{Records: recs, CloneSummary: stats.Summarize(CloneTimes(recs))}, nil
}

// CrossoverResult is the §3.4 cost-function walk-through outcome.
type CrossoverResult struct {
	Assignments []string // plant per request, in order
	Crossover   int      // 1-based request number that switched plants (0 = never)
}

// RunCostCrossover reproduces the §3.4 illustration: two plants, four
// host-only networks each, at most 32 VMs, network cost 50, compute
// cost 4×VMs, one client domain. The paper predicts 13 VMs on the first
// plant before the 14th lands on the second.
func RunCostCrossover(seed int64, requests int) (*CrossoverResult, error) {
	d, err := NewDeployment(Options{
		Plants:        2,
		Seed:          seed,
		GoldenSizesMB: []int{32},
		CostModelName: "network+compute",
		PlantConfig:   plant.Config{MaxVMs: 32, HostOnlyNetworks: 4},
	})
	if err != nil {
		return nil, err
	}
	recs, err := d.RunCreationSeries(requests, 32)
	if err != nil {
		return nil, err
	}
	res := &CrossoverResult{}
	for _, r := range recs {
		if !r.OK {
			return nil, fmt.Errorf("crossover request %d failed: %s", r.Seq, r.Err)
		}
		res.Assignments = append(res.Assignments, r.Plant)
		if res.Crossover == 0 && r.Plant != res.Assignments[0] {
			res.Crossover = r.Seq
		}
	}
	return res, nil
}

// AblationResult compares a variant against the baseline mechanism.
type AblationResult struct {
	Name         string
	BaselineSecs stats.Summary // link-clone + DAG partial matching
	VariantSecs  stats.Summary
	BaselineOK   int
	VariantOK    int
	Factor       float64 // variant mean / baseline mean
}

func ablate(seed int64, name string, n, memMB int, variant plant.Config, variantOpts func(*Options)) (*AblationResult, error) {
	base, err := NewDeployment(Options{Seed: seed, GoldenSizesMB: []int{memMB}})
	if err != nil {
		return nil, err
	}
	baseRecs, err := base.RunCreationSeries(n, memMB)
	if err != nil {
		return nil, err
	}
	opts := Options{Seed: seed, GoldenSizesMB: []int{memMB}, PlantConfig: variant}
	if variantOpts != nil {
		variantOpts(&opts)
	}
	vd, err := NewDeployment(opts)
	if err != nil {
		return nil, err
	}
	varRecs, err := vd.RunCreationSeries(n, memMB)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{
		Name:         name,
		BaselineSecs: stats.Summarize(CreateTimes(baseRecs)),
		VariantSecs:  stats.Summarize(CreateTimes(varRecs)),
		BaselineOK:   Succeeded(baseRecs),
		VariantOK:    Succeeded(varRecs),
	}
	if res.BaselineSecs.Mean > 0 {
		res.Factor = res.VariantSecs.Mean / res.BaselineSecs.Mean
	}
	return res, nil
}

// RunAblationNoPartialMatch disables partial matching: every creation
// starts from a blank image and pays the full OS install.
func RunAblationNoPartialMatch(seed int64, n int) (*AblationResult, error) {
	return ablate(seed, "no-partial-match", n, 64,
		plant.Config{DisablePartialMatch: true},
		func(o *Options) { o.PublishBlank = true })
}

// RunAblationCopyClone replaces link cloning with full disk copies.
func RunAblationCopyClone(seed int64, n int) (*AblationResult, error) {
	return ablate(seed, "copy-clone", n, 64,
		plant.Config{CloneMode: vdisk.CloneByCopy}, nil)
}

// PrecreationResult compares on-demand cloning against speculative
// pre-creation (paper §4.3/§6: "latency-hiding optimizations such as
// speculative pre-creation of VMs can be conceived, but have not yet
// been investigated" — investigated here as extension E9).
type PrecreationResult struct {
	ColdSummary stats.Summary // on-demand cloning
	WarmSummary stats.Summary // served from the pre-created pool
	Hits        int
	Speedup     float64 // cold mean / warm mean
}

// RunPrecreation issues n requests against a single plant twice: cold,
// and with a pool of n pre-created clones built during idle time.
func RunPrecreation(seed int64, n int) (*PrecreationResult, error) {
	return RunPrecreationBackend(seed, n, warehouse.BackendVMware)
}

// RunPrecreationBackend is RunPrecreation for a specific production
// line. With the UML backend it reproduces the study the paper left
// open (§4.1: "With checkpointing techniques such as SBUML, it is
// possible to clone virtual machines from the corresponding snapshots
// and resume them without a full reboot" — "the subject of on-going
// experimental studies"): pre-created UML clones resume from their
// checkpoint, skipping the ≈76 s boot.
func RunPrecreationBackend(seed int64, n int, backend string) (*PrecreationResult, error) {
	cold, err := NewDeployment(Options{Seed: seed, Plants: 1, GoldenSizesMB: []int{64}, Backend: backend})
	if err != nil {
		return nil, err
	}
	coldRecs, err := cold.RunCreationSeries(n, 64)
	if err != nil {
		return nil, err
	}

	warm, err := NewDeployment(Options{Seed: seed, Plants: 1, GoldenSizesMB: []int{64}, Backend: backend})
	if err != nil {
		return nil, err
	}
	if err := warm.Run(func(p *sim.Proc) {
		if err := warm.Plants[0].Precreate(p, GoldenName(64, warm.Opts.Backend), n); err != nil {
			p.Failf("precreate: %v", err)
		}
	}); err != nil {
		return nil, err
	}
	warmRecs, err := warm.RunCreationSeries(n, 64)
	if err != nil {
		return nil, err
	}
	hits := 0
	for _, cs := range warm.Plants[0].CreationLog() {
		if cs.PrecreateHit {
			hits++
		}
	}
	res := &PrecreationResult{
		ColdSummary: stats.Summarize(CreateTimes(coldRecs)),
		WarmSummary: stats.Summarize(CreateTimes(warmRecs)),
		Hits:        hits,
	}
	if res.WarmSummary.Mean > 0 {
		res.Speedup = res.ColdSummary.Mean / res.WarmSummary.Mean
	}
	return res, nil
}

// MigrationResult measures live VM relocation (paper §6 future work:
// "migration of active VMs across plants") against the alternative of
// destroying and re-creating the VM on the destination.
type MigrationResult struct {
	MigrateSecs  stats.Summary
	RecreateSecs stats.Summary
	Speedup      float64
}

// RunMigration creates n VMs on one plant and moves each to a second
// plant, comparing migration latency with fresh re-creation latency.
func RunMigration(seed int64, n int) (*MigrationResult, error) {
	d, err := NewDeployment(Options{Seed: seed, Plants: 2, GoldenSizesMB: []int{64}})
	if err != nil {
		return nil, err
	}
	src, dst := d.Plants[0], d.Plants[1]
	var migrate, recreate []float64
	err = d.Run(func(p *sim.Proc) {
		for i := 1; i <= n; i++ {
			spec, err := d.WorkspaceSpec(i, 64)
			if err != nil {
				p.Failf("spec: %v", err)
			}
			id := core.VMID(fmt.Sprintf("vm-mig-%d", i))
			if _, err := src.Create(p, id, spec); err != nil {
				p.Failf("create: %v", err)
			}
			start := p.Now()
			if err := src.MigrateTo(p, id, dst); err != nil {
				p.Failf("migrate: %v", err)
			}
			migrate = append(migrate, (p.Now() - start).Seconds())

			// The alternative: build the same workspace from scratch on
			// the destination.
			spec2, err := d.WorkspaceSpec(i+1000, 64)
			if err != nil {
				p.Failf("spec: %v", err)
			}
			start = p.Now()
			if _, err := dst.Create(p, core.VMID(fmt.Sprintf("vm-fresh-%d", i)), spec2); err != nil {
				p.Failf("recreate: %v", err)
			}
			recreate = append(recreate, (p.Now() - start).Seconds())
		}
	})
	if err != nil {
		return nil, err
	}
	res := &MigrationResult{
		MigrateSecs:  stats.Summarize(migrate),
		RecreateSecs: stats.Summarize(recreate),
	}
	if res.MigrateSecs.Mean > 0 {
		res.Speedup = res.RecreateSecs.Mean / res.MigrateSecs.Mean
	}
	return res, nil
}

// AnatomyResult breaks one creation workload into its pipeline stages —
// the "closer look" analysis behind the paper's Figure 5 discussion.
type AnatomyResult struct {
	N          int
	CopySecs   stats.Summary // state copy over NFS (config, redo, memory image)
	ResumeSecs stats.Summary // local read-back + VMM resume
	ConfigSecs stats.Summary // residual DAG execution via the guest agent
	TotalSecs  stats.Summary // plant-side create
	ClientSecs stats.Summary // client-observed end to end (adds shop/bidding)
}

// RunAnatomy runs a 64 MB series and aggregates per-stage latencies
// from the plants' creation logs.
func RunAnatomy(seed int64, n int) (*AnatomyResult, error) {
	d, err := NewDeployment(Options{Seed: seed, GoldenSizesMB: []int{64}})
	if err != nil {
		return nil, err
	}
	recs, err := d.RunCreationSeries(n, 64)
	if err != nil {
		return nil, err
	}
	var copySecs, resumeSecs, cfgSecs, totalSecs []float64
	for _, pl := range d.Plants {
		for _, cs := range pl.CreationLog() {
			copySecs = append(copySecs, cs.Clone.CopyTime.Seconds())
			resumeSecs = append(resumeSecs, cs.Clone.ResumeTime.Seconds())
			cfgSecs = append(cfgSecs, cs.ConfigTime.Seconds())
			totalSecs = append(totalSecs, cs.Total.Seconds())
		}
	}
	return &AnatomyResult{
		N:          len(totalSecs),
		CopySecs:   stats.Summarize(copySecs),
		ResumeSecs: stats.Summarize(resumeSecs),
		ConfigSecs: stats.Summarize(cfgSecs),
		TotalSecs:  stats.Summarize(totalSecs),
		ClientSecs: stats.Summarize(CreateTimes(recs)),
	}, nil
}

// ParkingResult measures the idle-workspace lifecycle: suspending a
// workspace frees its host memory; resuming it is far cheaper than
// re-creating it.
type ParkingResult struct {
	SuspendSecs     stats.Summary
	ResumeSecs      stats.Summary
	CreateSecs      stats.Summary
	CommittedBefore int // node MB committed with all workspaces running
	CommittedParked int // node MB committed with all workspaces suspended
}

// RunParking creates n workspaces on one plant, parks them all, then
// resumes them, recording each transition's latency and the node's
// committed memory.
func RunParking(seed int64, n int) (*ParkingResult, error) {
	d, err := NewDeployment(Options{Seed: seed, Plants: 1, GoldenSizesMB: []int{64}})
	if err != nil {
		return nil, err
	}
	recs, err := d.RunCreationSeries(n, 64)
	if err != nil {
		return nil, err
	}
	res := &ParkingResult{CreateSecs: stats.Summarize(CreateTimes(recs))}
	var suspend, resume []float64
	err = d.Run(func(p *sim.Proc) {
		res.CommittedBefore = d.Testbed.Nodes[0].CommittedMB()
		for _, rec := range recs {
			start := p.Now()
			if err := d.Shop.Suspend(p, rec.VMID); err != nil {
				p.Failf("suspend: %v", err)
			}
			suspend = append(suspend, (p.Now() - start).Seconds())
		}
		res.CommittedParked = d.Testbed.Nodes[0].CommittedMB()
		for _, rec := range recs {
			start := p.Now()
			if err := d.Shop.Resume(p, rec.VMID); err != nil {
				p.Failf("resume: %v", err)
			}
			resume = append(resume, (p.Now() - start).Seconds())
		}
	})
	if err != nil {
		return nil, err
	}
	res.SuspendSecs = stats.Summarize(suspend)
	res.ResumeSecs = stats.Summarize(resume)
	return res, nil
}

// TemplateVsDAGResult is the A2 ablation: template (exact-configuration)
// matching à la VirtualCenter versus the paper's DAG partial matching,
// over a workload mixing generic and personalized requests.
type TemplateVsDAGResult struct {
	Requests        int
	TemplateHits    int
	TemplateOK      int
	TemplateSummary stats.Summary
	DAGHits         int
	DAGOK           int
	DAGSummary      stats.Summary
}

// RunTemplateVsDAG issues n requests alternating between generic
// workspaces (exact template hits) and personalized ones (template
// misses that fall back to a blank image and a full install; DAG
// matching serves them from the partial image).
func RunTemplateVsDAG(seed int64, n int) (*TemplateVsDAGResult, error) {
	run := func(cfg plant.Config) ([]CreationRecord, int, error) {
		d, err := NewDeployment(Options{
			Seed:          seed,
			GoldenSizesMB: []int{64},
			PublishBlank:  true,
			PlantConfig:   cfg,
		})
		if err != nil {
			return nil, 0, err
		}
		var recs []CreationRecord
		hits := 0
		err = d.Run(func(p *sim.Proc) {
			for i := 1; i <= n; i++ {
				spec, err := d.WorkspaceSpec(i, 64)
				if err != nil {
					p.Failf("spec: %v", err)
				}
				if i%2 == 1 {
					g, err := GenericDAG()
					if err != nil {
						p.Failf("generic dag: %v", err)
					}
					spec.Graph = g
				}
				start := p.Now()
				_, ad, err := d.Shop.Create(p, spec)
				rec := CreationRecord{Seq: i, MemoryMB: 64, CreateSecs: (p.Now() - start).Seconds()}
				if err != nil {
					rec.Err = err.Error()
				} else {
					rec.OK = true
					if ad.GetInt(core.AttrMatchedOps, 0) > 0 {
						hits++
					}
				}
				recs = append(recs, rec)
			}
		})
		return recs, hits, err
	}
	tmplRecs, tmplHits, err := run(plant.Config{TemplateMatch: true})
	if err != nil {
		return nil, err
	}
	dagRecs, dagHits, err := run(plant.Config{})
	if err != nil {
		return nil, err
	}
	return &TemplateVsDAGResult{
		Requests:        n,
		TemplateHits:    tmplHits,
		TemplateOK:      Succeeded(tmplRecs),
		TemplateSummary: stats.Summarize(CreateTimes(tmplRecs)),
		DAGHits:         dagHits,
		DAGOK:           Succeeded(dagRecs),
		DAGSummary:      stats.Summarize(CreateTimes(dagRecs)),
	}, nil
}
