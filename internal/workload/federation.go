package workload

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/federation"
	"vmplants/internal/journal"
	"vmplants/internal/plant"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
)

// The federation experiment gates the multi-shop control plane, in two
// phases sharing one seed and one fingerprint:
//
// Throughput phase — the scale-out claim. A create–hold–destroy stream
// of W workspace requests is driven once through a single shop fronting
// M plants, then through N cells of M plants each (each cell its own
// testbed, so its own NFS server), with 70% of the requests aimed at
// the first cell. Clients on both sides get the same bounded patience,
// so the single shop sheds the load it cannot admit while the hot cell
// re-auctions its overflow to peers and serves the full stream; the
// goodput ratio must scale near-linearly with the added cells (the
// acceptance gate wants >= 2.5x for 3 cells).
//
// Integrity phase — the exactly-once claim. A create-and-hold wave
// saturates a smaller federation whose hot shop is killed at the
// nastiest cross-cell instant: after a peer built the forwarded VM but
// before the origin committed the route. The supervisor restarts it
// from its journal, reconciliation probes the attempted peers, clients
// re-submit under the same RequestID — and the audit demands zero lost,
// zero duplicated creations across every cell, plus the gossip proof: a
// checkpoint published in one cell warm-clones in another.

// FederationOptions configures a federation run.
type FederationOptions struct {
	Cells    int // default 3
	MaxVMs   int // per-plant VM cap (default 6)
	MemoryMB int // default 64
	// HotShare is the fraction of requests aimed at the first cell
	// (default 0.7); the rest round-robin over the remaining cells.
	HotShare float64

	// PlantsPerCell sizes the throughput phase (default 6): N cells of
	// this many plants against one cell of the same.
	PlantsPerCell int
	// ThroughputRequests is the stream length (default
	// Cells*PlantsPerCell*MaxVMs).
	ThroughputRequests int
	// HoldSecs is how long each workspace lives before the client
	// destroys it (default 15).
	HoldSecs float64

	// IntegrityPlantsPerCell sizes the integrity phase (default 2 — the
	// hot cell must overflow so the kill lands mid-forward).
	IntegrityPlantsPerCell int
	// IntegrityRequests fills the integrity federation exactly (default
	// Cells*IntegrityPlantsPerCell*MaxVMs).
	IntegrityRequests int
	// RestartAfter is the supervisor's delay before restarting the
	// killed hot shop (default 5 s virtual).
	RestartAfter time.Duration
	// ClientRetries bounds request re-submissions (default 10).
	ClientRetries int
	// DisableKill skips the integrity phase's mid-run hot-shop kill.
	DisableKill bool
}

func (o FederationOptions) withDefaults() FederationOptions {
	if o.Cells == 0 {
		o.Cells = 3
	}
	if o.MaxVMs == 0 {
		o.MaxVMs = 6
	}
	if o.MemoryMB == 0 {
		o.MemoryMB = 64
	}
	if o.HotShare == 0 {
		o.HotShare = 0.7
	}
	if o.PlantsPerCell == 0 {
		o.PlantsPerCell = 6
	}
	if o.ThroughputRequests == 0 {
		o.ThroughputRequests = o.Cells * o.PlantsPerCell * o.MaxVMs
	}
	if o.HoldSecs == 0 {
		o.HoldSecs = 15
	}
	if o.IntegrityPlantsPerCell == 0 {
		o.IntegrityPlantsPerCell = 2
	}
	if o.IntegrityRequests == 0 {
		o.IntegrityRequests = o.Cells * o.IntegrityPlantsPerCell * o.MaxVMs
	}
	if o.RestartAfter == 0 {
		o.RestartAfter = 5 * time.Second
	}
	if o.ClientRetries == 0 {
		o.ClientRetries = 10
	}
	return o
}

// SmokeFederationOptions is the CI-gate variant: 3 shops of 6 plants
// each versus 1 shop of 6 plants on the same stream.
func SmokeFederationOptions() FederationOptions {
	return FederationOptions{Cells: 3, PlantsPerCell: 6, ThroughputRequests: 108}
}

// CellLoad is one integrity-phase cell's share of the wave.
type CellLoad struct {
	Cell      string
	Targeted  int // requests clients aimed at this cell
	LiveVMs   int // VMs its plants host at the end
	Forwarded int // creations it re-auctioned to peers
}

// FederationResult reports what a federation run proved.
type FederationResult struct {
	Cells int

	// Throughput phase.
	ThroughputRequests    int
	BaselineSucceeded     int
	FederatedSucceeded    int
	BaselineMakespanSecs  float64
	FederatedMakespanSecs float64
	// Speedup is federated goodput (served / makespan) over the
	// single-shop baseline's on the same offered stream with the same
	// client patience; the acceptance gate wants >= 2.5x for 3 cells.
	Speedup float64

	// Integrity phase.
	Requests  int
	Succeeded int

	// Forward-protocol counters (both phases, all cells).
	PeerBidRounds  int64
	Forwarded      int64
	ForwardFails   int64
	ServedForwards int64

	// Mid-run kill accounting.
	ShopKills    int64
	ShopRestarts int64
	Reconciled   int64
	Deduped      int64
	Lost         int
	Duplicated   int

	// Catalog gossip: derived images imported across cells, and the
	// warm-clone proof — a checkpoint published in one cell matched a
	// later creation in a different cell.
	GossipImported int64
	GossipOK       bool
	WarmCloneOK    bool
	WarmImage      string
	WarmCloneCell  string
	WarmMatchedOps int

	PerCell []CellLoad

	// Journals holds each integrity-phase cell's final shop-journal
	// records and Spans that phase's trace — the material vmbench dumps
	// as CI failure artifacts.
	Journals map[string][]journal.Record
	Spans    []telemetry.Span

	// Fingerprint digests every outcome of both phases; two runs with
	// the same seed must produce identical fingerprints.
	Fingerprint string
}

// fedRecord is one request's client-observed outcome.
type fedRecord struct {
	Seq        int
	TargetCell int
	OK         bool
	VMID       core.VMID
	Plant      string
	Retries    int
	Destroyed  bool
	Err        string
}

// cellName names cell i ("cellA", "cellB", ...).
func cellName(i int) string { return fmt.Sprintf("cell%c", 'A'+i) }

// fedTargets assigns each request a target cell: hotShare of every ten
// requests go to cell 0, the rest round-robin over the others.
func fedTargets(n, cells int, hotShare float64) []int {
	hotPerTen := int(hotShare*10 + 0.5)
	targets := make([]int, n)
	cool := 0
	for i := range targets {
		if i%10 < hotPerTen || cells == 1 {
			targets[i] = 0
		} else {
			targets[i] = 1 + cool%(cells-1)
			cool++
		}
	}
	return targets
}

// runFederatedWave drives the concurrent request wave against the given
// per-request shops, with client retries riding out full cells and shop
// downtime. With hold > 0 each client destroys its workspace after
// holding it, modelling a grid session stream. The records fill in as
// clients finish; once all have, the wave proc stores the makespan and
// runs `after` (post-wave audits that need a live proc), so callers
// read both only after the kernel runs.
func runFederatedWave(k *sim.Kernel, d *Deployment, shops []*shop.Shop, targets []int, opts FederationOptions, prefix string, hold time.Duration, makespan *time.Duration, after func(p *sim.Proc)) []fedRecord {
	n := len(targets)
	records := make([]fedRecord, n)
	done := 0
	main := k.Spawn(prefix+"-wave", func(p *sim.Proc) {
		for done < n {
			p.Wait(24 * time.Hour)
		}
		*makespan = p.Now()
		if after != nil {
			after(p)
		}
	})
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("%s-client-%03d", prefix, i), func(p *sim.Proc) {
			defer func() { done++; main.WakeUp() }()
			rec := &records[i]
			rec.Seq = i + 1
			rec.TargetCell = targets[i]
			spec, err := d.WorkspaceSpec(i+1, opts.MemoryMB)
			if err != nil {
				rec.Err = err.Error()
				return
			}
			spec.RequestID = fmt.Sprintf("%s-req-%04d", prefix, i+1)
			s := shops[targets[i]]
			for try := 0; ; try++ {
				id, ad, cerr := s.Create(p, spec)
				if cerr == nil {
					rec.OK = true
					rec.VMID = id
					rec.Plant = ad.GetString(core.AttrPlant, "")
					rec.Retries = try
					break
				}
				if try >= opts.ClientRetries {
					rec.Err = cerr.Error()
					return
				}
				if errors.Is(cerr, shop.ErrShopDown) {
					// The supervisor restarts the daemon; re-submit under
					// the same request ID once it should be back.
					p.Sleep(opts.RestartAfter + 2*time.Second)
					continue
				}
				// Transient (cluster momentarily full, peer round
				// exhausted): back off and re-bid.
				p.Sleep(2 * time.Second)
			}
			if hold > 0 {
				p.Sleep(hold)
				for try := 0; try < opts.ClientRetries; try++ {
					if derr := s.Destroy(p, rec.VMID); derr == nil {
						rec.Destroyed = true
						return
					}
					p.Sleep(2 * time.Second)
				}
			}
		})
	}
	return records
}

// buildCells wires a federation of fresh cells on one kernel, each with
// its own testbed. Journals attach only when withJournals is set (the
// integrity phase needs forwarded intents durable in both cells).
func buildCells(k *sim.Kernel, hub *telemetry.Hub, seed int64, opts FederationOptions, plantsPerCell int, withJournals bool) ([]*Deployment, []*shop.Shop, []*journal.Journal, *federation.Federation, error) {
	cells := make([]*Deployment, opts.Cells)
	shops := make([]*shop.Shop, opts.Cells)
	jnls := make([]*journal.Journal, opts.Cells)
	fed := federation.New(k)
	fed.SetTelemetry(hub)
	for i := range cells {
		d, err := NewDeployment(Options{
			Kernel:   k,
			CellName: cellName(i),
			Plants:   plantsPerCell,
			Seed:     seed + int64(i)*101,
			PlantConfig: plant.Config{
				MaxVMs:      opts.MaxVMs,
				PublishBack: true,
			},
			Telemetry: hub,
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if withJournals {
			vol := storage.NewVolume(cellName(i)+"-log",
				storage.NewDevice(cellName(i)+"-log-disk", 64<<20, 100*time.Microsecond))
			jnl := journal.Open(vol, "journal/"+cellName(i))
			jnl.SetTelemetry(hub)
			d.Shop.SetJournal(jnl)
			jnls[i] = jnl
		}
		cells[i] = d
		shops[i] = d.Shop
		if err := fed.AddCell(&federation.Cell{Name: cellName(i), Shop: d.Shop, Warehouse: d.Warehouse}); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	fed.Wire()
	fed.Start(k)
	return cells, shops, jnls, fed, nil
}

// forwardCounters accumulates the forward-protocol counters of one
// phase's hub into the result.
func (r *FederationResult) forwardCounters(hub *telemetry.Hub) {
	r.PeerBidRounds += hub.Counter("shop.peer_bid_rounds").Value()
	r.Forwarded += hub.Counter("shop.forwarded_creates").Value()
	r.ForwardFails += hub.Counter("shop.forward_failures").Value()
	r.ServedForwards += hub.Counter("shop.served_forwards").Value()
}

// runThroughputPhase measures the scale-out claim: the same stream
// through 1 shop × M plants, then through N shops × M plants.
func runThroughputPhase(seed int64, opts FederationOptions, res *FederationResult, fp *[]string) error {
	hold := time.Duration(opts.HoldSecs * float64(time.Second))
	w := opts.ThroughputRequests

	base, err := NewDeployment(Options{
		Plants: opts.PlantsPerCell,
		Seed:   seed,
		PlantConfig: plant.Config{
			MaxVMs:      opts.MaxVMs,
			PublishBack: true,
		},
	})
	if err != nil {
		return err
	}
	var baseSpan time.Duration
	baseRecs := runFederatedWave(base.Kernel, base, []*shop.Shop{base.Shop},
		make([]int, w), opts, "base", hold, &baseSpan, nil)
	if r := base.Kernel.Run(0); len(r.Stranded) != 0 {
		return fmt.Errorf("federation baseline: stranded processes: %v", r.Stranded)
	}

	hub := telemetry.New()
	k := sim.NewKernel()
	k.SetTelemetry(hub)
	cells, shops, _, fed, err := buildCells(k, hub, seed+1, opts, opts.PlantsPerCell, false)
	if err != nil {
		return err
	}
	var fedSpan time.Duration
	fedRecs := runFederatedWave(k, cells[0], shops,
		fedTargets(w, opts.Cells, opts.HotShare), opts, "scale", hold, &fedSpan,
		func(p *sim.Proc) { fed.Stop() })
	if r := k.Run(0); len(r.Stranded) != 0 {
		return fmt.Errorf("federation scale-out: stranded processes: %v", r.Stranded)
	}

	for i := range baseRecs {
		if baseRecs[i].OK {
			res.BaselineSucceeded++
		}
		if fedRecs[i].OK {
			res.FederatedSucceeded++
		}
		*fp = append(*fp, fmt.Sprintf("stream %d base ok=%v retries=%d | fed cell=%s ok=%v plant=%s retries=%d",
			i+1, baseRecs[i].OK, baseRecs[i].Retries,
			cellName(fedRecs[i].TargetCell), fedRecs[i].OK, fedRecs[i].Plant, fedRecs[i].Retries))
	}
	res.BaselineMakespanSecs = baseSpan.Seconds()
	res.FederatedMakespanSecs = fedSpan.Seconds()
	if res.BaselineMakespanSecs > 0 && res.FederatedMakespanSecs > 0 && res.BaselineSucceeded > 0 {
		baseTput := float64(res.BaselineSucceeded) / res.BaselineMakespanSecs
		fedTput := float64(res.FederatedSucceeded) / res.FederatedMakespanSecs
		res.Speedup = fedTput / baseTput
	}
	res.forwardCounters(hub)
	*fp = append(*fp, fmt.Sprintf("throughput: base %d/%d in %.1fs, federated %d/%d in %.1fs, speedup %.3f",
		res.BaselineSucceeded, w, res.BaselineMakespanSecs,
		res.FederatedSucceeded, w, res.FederatedMakespanSecs, res.Speedup))
	return nil
}

// runIntegrityPhase drives the kill/reconcile/gossip wave and its
// exactly-once audit.
func runIntegrityPhase(seed int64, opts FederationOptions, res *FederationResult, fp *[]string) error {
	hub := telemetry.New()
	reg := fault.NewRegistry(seed + 7919)
	reg.SetTelemetry(hub)
	k := sim.NewKernel()
	k.SetTelemetry(hub)
	cells, shops, jnls, fed, err := buildCells(k, hub, seed+2, opts, opts.IntegrityPlantsPerCell, true)
	if err != nil {
		return err
	}
	for _, s := range shops {
		s.Faults = reg
	}
	targets := fedTargets(opts.IntegrityRequests, opts.Cells, opts.HotShare)

	hot := shops[0]
	if !opts.DisableKill {
		// Die at the worst cross-cell instant: the peer has built the
		// forwarded VM, the origin has not committed the route.
		reg.Arm(hot.Name(), fault.DaemonKill, "forward", 1)
	}

	var supLines []string
	supStop := false
	sup := k.Spawn("fed-supervisor", func(p *sim.Proc) {
		for !supStop {
			if hot.Down() {
				p.Sleep(opts.RestartAfter)
				st, rerr := hot.Restart(p)
				if rerr != nil {
					p.Failf("federation: hot shop restart: %v", rerr)
				}
				supLines = append(supLines, fmt.Sprintf(
					"hot restart at %.1fs: replayed=%d routes=%d reconciled=%d redriven=%d unresolved=%d",
					p.Now().Seconds(), st.Replayed, st.Routes, st.Reconciled, st.Redriven, st.Unresolved))
				continue
			}
			p.Wait(time.Second)
		}
	})

	var runErr error
	var lines []string
	var fedRecs []fedRecord
	var fedSpan time.Duration
	fedRecs = runFederatedWave(k, cells[0], shops, targets, opts, "fed", 0, &fedSpan, func(p *sim.Proc) {
		// Let straggler publish-back uploads land before gossiping.
		p.Sleep(30 * time.Second)

		// Exactly-once audit, half one: every acked creation is
		// queryable through the shop that acked it (local or forwarded).
		for i := range fedRecs {
			r := &fedRecs[i]
			if !r.OK {
				continue
			}
			res.Succeeded++
			if _, qerr := shops[r.TargetCell].Query(p, r.VMID); qerr != nil {
				res.Lost++
				lines = append(lines, fmt.Sprintf("LOST %s (req %d): %v", r.VMID, r.Seq, qerr))
			}
		}

		// Exactly-once audit, half two: the plants across every cell
		// host exactly one VM per acked request.
		unique := make(map[core.VMID]bool)
		for i := range fedRecs {
			if fedRecs[i].OK {
				unique[remoteID(shops[fedRecs[i].TargetCell], fedRecs[i].VMID)] = true
			}
		}
		live := 0
		for _, d := range cells {
			for _, pl := range d.Plants {
				live += pl.ActiveVMs()
			}
		}
		res.Duplicated = live - len(unique)
		if len(unique) < res.Succeeded {
			res.Duplicated += res.Succeeded - len(unique)
		}

		// Catalog gossip + warm-clone proof. The donor is the first
		// acked request whose VM was built outside the warm cell, so
		// its publish-back checkpoint can only reach the warm cell via
		// gossip. Re-instantiating the same user's workspace there must
		// then clone the gossiped derived image.
		warmCell := opts.Cells - 1
		donor := -1
		for i, r := range fedRecs {
			if r.OK && !strings.HasPrefix(r.Plant, cellName(warmCell)+"/") {
				donor = i
				break
			}
		}
		g := fed.GossipNow(p)
		lines = append(lines, fmt.Sprintf("gossip: imported=%d deferred=%d rejected=%d poisoned=%d",
			g.Imported, g.Deferred, g.Rejected, g.Poisoned))
		if donor >= 0 {
			// Make room in the warm cell, then re-run the donor's spec.
			freed := false
			for i := len(fedRecs) - 1; i >= 0; i-- {
				r := fedRecs[i]
				if r.OK && r.TargetCell == warmCell && strings.HasPrefix(r.Plant, cellName(warmCell)+"/") {
					if derr := shops[warmCell].Destroy(p, r.VMID); derr == nil {
						freed = true
						break
					}
				}
			}
			if !freed {
				lines = append(lines, "warm check: no local VM to evict in warm cell")
			}
			spec, serr := cells[0].WorkspaceSpec(fedRecs[donor].Seq, opts.MemoryMB)
			if serr != nil {
				runErr = serr
				return
			}
			spec.RequestID = "fed-warm-check"
			_, ad, cerr := shops[warmCell].Create(p, spec)
			if cerr != nil {
				lines = append(lines, fmt.Sprintf("warm check FAILED: %v", cerr))
			} else {
				res.WarmImage = ad.GetString(core.AttrGoldenImage, "")
				res.WarmCloneCell = cellName(warmCell)
				res.WarmMatchedOps = int(ad.GetInt(core.AttrMatchedOps, 0))
				if im, ok := cells[warmCell].Warehouse.Lookup(res.WarmImage); ok && im.Derived {
					res.WarmCloneOK = true
					// The image is matchable cluster-wide only if every
					// cell now has it.
					res.GossipOK = true
					for _, d := range cells {
						if _, ok := d.Warehouse.Lookup(res.WarmImage); !ok {
							res.GossipOK = false
						}
					}
				}
				lines = append(lines, fmt.Sprintf("warm clone in %s: image=%s derived=%v matched=%d",
					res.WarmCloneCell, res.WarmImage, res.WarmCloneOK, res.WarmMatchedOps))
			}
		} else {
			lines = append(lines, "warm check: no donor outside warm cell")
		}

		// Shut the long-lived procs down so the kernel can quiesce.
		supStop = true
		sup.WakeUp()
		fed.Stop()
	})

	if r := k.Run(0); len(r.Stranded) != 0 {
		return fmt.Errorf("federation integrity: stranded processes: %v", r.Stranded)
	}
	if runErr != nil {
		return runErr
	}

	for _, r := range fedRecs {
		if !r.OK {
			lines = append(lines, fmt.Sprintf("req %d FAILED %s", r.Seq, r.Err))
		}
	}

	res.forwardCounters(hub)
	res.ShopKills = hub.Counter("shop.crashes").Value()
	res.ShopRestarts = hub.Counter("shop.restarts").Value()
	res.Reconciled = hub.Counter("shop.reconciled_creates").Value()
	res.Deduped = hub.Counter("shop.deduped_creates").Value()
	res.GossipImported = hub.Counter("federation.images_imported").Value()

	for i, d := range cells {
		load := CellLoad{Cell: cellName(i)}
		for _, t := range targets {
			if t == i {
				load.Targeted++
			}
		}
		for _, pl := range d.Plants {
			load.LiveVMs += pl.ActiveVMs()
		}
		load.Forwarded = len(d.Shop.Federation().Forwarded)
		res.PerCell = append(res.PerCell, load)
	}

	res.Journals = make(map[string][]journal.Record, opts.Cells)
	for i, jnl := range jnls {
		res.Journals[cellName(i)] = jnl.Records()
	}
	res.Spans = hub.Tracer.Spans()

	for _, r := range fedRecs {
		*fp = append(*fp, fmt.Sprintf("req %d cell=%s ok=%v id=%s plant=%s retries=%d",
			r.Seq, cellName(r.TargetCell), r.OK, r.VMID, r.Plant, r.Retries))
	}
	*fp = append(*fp, supLines...)
	*fp = append(*fp, lines...)
	*fp = append(*fp, reg.Summary()...)
	return nil
}

// RunFederation measures the federated control plane against a
// single-shop baseline and audits the forward protocol under a mid-run
// shop kill.
func RunFederation(seed int64, opts FederationOptions) (*FederationResult, error) {
	opts = opts.withDefaults()
	res := &FederationResult{
		Cells:              opts.Cells,
		ThroughputRequests: opts.ThroughputRequests,
		Requests:           opts.IntegrityRequests,
	}
	var fp []string
	if err := runThroughputPhase(seed, opts, res, &fp); err != nil {
		return nil, err
	}
	if err := runIntegrityPhase(seed, opts, res, &fp); err != nil {
		return nil, err
	}
	fp = append(fp, fmt.Sprintf(
		"forwarded=%d fails=%d served=%d kills=%d restarts=%d reconciled=%d deduped=%d lost=%d dup=%d imported=%d",
		res.Forwarded, res.ForwardFails, res.ServedForwards, res.ShopKills, res.ShopRestarts,
		res.Reconciled, res.Deduped, res.Lost, res.Duplicated, res.GossipImported))
	res.Fingerprint = strings.Join(fp, "\n")
	return res, nil
}

// remoteID resolves the VMID actually hosted on a plant: for a
// forwarded creation the origin acked its own ID while the serving
// cell's plant runs the peer-minted one.
func remoteID(s *shop.Shop, id core.VMID) core.VMID {
	if _, remote, ok := s.ForwardedTo(id); ok {
		return remote
	}
	return id
}

// Report renders the run as printable lines.
func (r *FederationResult) Report() []string {
	out := []string{
		fmt.Sprintf("cells:                %d", r.Cells),
		fmt.Sprintf("stream:               %d requests (create-hold-destroy)", r.ThroughputRequests),
		fmt.Sprintf("  1 shop:             %d/%d served, makespan %.1fs", r.BaselineSucceeded, r.ThroughputRequests, r.BaselineMakespanSecs),
		fmt.Sprintf("  %d shops:            %d/%d served, makespan %.1fs", r.Cells, r.FederatedSucceeded, r.ThroughputRequests, r.FederatedMakespanSecs),
		fmt.Sprintf("  goodput speedup:    %.2fx", r.Speedup),
		fmt.Sprintf("integrity wave:       %d requests (succeeded %d)", r.Requests, r.Succeeded),
		fmt.Sprintf("peer bid rounds:      %d (forwarded %d, failed %d, served %d)",
			r.PeerBidRounds, r.Forwarded, r.ForwardFails, r.ServedForwards),
		fmt.Sprintf("hot-shop kills:       %d (restarts %d, reconciled %d, deduped %d)",
			r.ShopKills, r.ShopRestarts, r.Reconciled, r.Deduped),
		fmt.Sprintf("lost creations:       %d", r.Lost),
		fmt.Sprintf("duplicated VMs:       %d", r.Duplicated),
		fmt.Sprintf("gossip imports:       %d (cluster-wide %v)", r.GossipImported, r.GossipOK),
		fmt.Sprintf("warm clone:           %v (%s in %s, matched %d ops)",
			r.WarmCloneOK, r.WarmImage, r.WarmCloneCell, r.WarmMatchedOps),
	}
	for _, c := range r.PerCell {
		out = append(out, fmt.Sprintf("  %s: targeted %d, hosts %d VMs, forwarded %d",
			c.Cell, c.Targeted, c.LiveVMs, c.Forwarded))
	}
	return out
}
