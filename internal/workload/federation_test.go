package workload

import (
	"strings"
	"testing"
)

// A scaled-down federation run: the hot cell must overflow into its
// peer, the armed kill must land mid-forward and be repaired, and the
// exactly-once audit must hold across both cells.
func TestFederationSmallRunExactlyOnce(t *testing.T) {
	opts := FederationOptions{
		Cells:                  2,
		PlantsPerCell:          2,
		MaxVMs:                 2,
		ThroughputRequests:     12,
		IntegrityPlantsPerCell: 2,
		IntegrityRequests:      8,
		// 12 requests over 8 slots: the second generation must outlive
		// the first generation's create+hold, so clients need patience.
		ClientRetries: 40,
	}
	res, err := RunFederation(5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded != res.Requests {
		t.Errorf("integrity wave served %d/%d", res.Succeeded, res.Requests)
	}
	if res.Forwarded == 0 || res.ServedForwards == 0 {
		t.Errorf("hot cell never overflowed: forwarded=%d served=%d", res.Forwarded, res.ServedForwards)
	}
	if res.ShopKills != 1 || res.ShopRestarts != 1 {
		t.Errorf("kill/restart = %d/%d, want 1/1", res.ShopKills, res.ShopRestarts)
	}
	if res.Lost != 0 || res.Duplicated != 0 {
		t.Errorf("exactly-once violated: lost=%d duplicated=%d", res.Lost, res.Duplicated)
	}
	if res.FederatedSucceeded != res.ThroughputRequests {
		t.Errorf("federated stream served %d/%d", res.FederatedSucceeded, res.ThroughputRequests)
	}
	if res.BaselineSucceeded == 0 || res.Speedup <= 1 {
		t.Errorf("no scale-out signal: baseline=%d speedup=%.2f", res.BaselineSucceeded, res.Speedup)
	}
	if len(res.Journals) != opts.Cells {
		t.Errorf("captured %d cell journals, want %d", len(res.Journals), opts.Cells)
	}
	if res.Fingerprint == "" || !strings.Contains(res.Fingerprint, "lost=0 dup=0") {
		t.Errorf("fingerprint missing audit line:\n%s", res.Fingerprint)
	}
}

// Same seed, same options: the whole two-phase run must replay
// byte-identically — the property the CI determinism gate leans on.
func TestFederationDeterministicFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("double federation run in -short mode")
	}
	opts := FederationOptions{
		Cells:                  2,
		PlantsPerCell:          2,
		MaxVMs:                 2,
		ThroughputRequests:     8,
		IntegrityPlantsPerCell: 2,
		IntegrityRequests:      8,
	}
	a, err := RunFederation(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFederation(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Error("same-seed federation reruns diverged")
	}
}
