package workload

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/stats"
	"vmplants/internal/telemetry"
)

// The pipeline experiment measures what the batched creation pipeline
// buys: creations per virtual second at growing batch sizes, plus the
// determinism guarantee that the pipeline machinery leaves a single
// serial request byte-identical.

// PipelineOptions tunes RunPipeline.
type PipelineOptions struct {
	// Plants is the cluster size (default 8, the paper's testbed).
	Plants int
	// MemoryMB is the workspace size (default 64).
	MemoryMB int
	// Sizes are the batch sizes to sweep (default 1, 4, 16, 64).
	Sizes []int
	// BidTimeout bounds each bidding round so concurrent rounds overlap
	// (default 1 s of virtual time).
	BidTimeout time.Duration
}

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.Plants == 0 {
		o.Plants = 8
	}
	if o.MemoryMB == 0 {
		o.MemoryMB = 64
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{1, 4, 16, 64}
	}
	if o.BidTimeout == 0 {
		o.BidTimeout = time.Second
	}
	return o
}

// BatchPoint is one batch size's measurement, taken on a fresh
// deployment.
type BatchPoint struct {
	Size         int
	OK           int
	Failed       int
	MakespanSecs float64 // first submit → last response, virtual time
	Throughput   float64 // successful creations per virtual second
	CacheHits    int64   // warehouse clone-cache hits
	CacheMisses  int64
	// AdmissionWait summarizes plant.admission_wait_secs: how long
	// creations queued for a clone slot.
	AdmissionWait stats.Summary
	// MaxInflight is the highest concurrently admitted clone count seen
	// on any single plant.
	MaxInflight int
}

// PipelineResult is the full sweep plus the determinism check.
type PipelineResult struct {
	Plants   int
	MemoryMB int
	Batches  []BatchPoint

	// DeterminismOK reports that a fresh default deployment creating
	// one VM serially and a fresh same-seed deployment creating the
	// same VM through CreateMany produced byte-identical creation logs
	// and bid records.
	DeterminismOK     bool
	SerialFingerprint string
	BatchFingerprint  string
}

// SpeedupOver reports throughput at batch size a divided by throughput
// at batch size b (0 when either point is missing or empty).
func (r *PipelineResult) SpeedupOver(a, b int) float64 {
	var ta, tb float64
	for _, bp := range r.Batches {
		if bp.Size == a {
			ta = bp.Throughput
		}
		if bp.Size == b {
			tb = bp.Throughput
		}
	}
	if tb == 0 {
		return 0
	}
	return ta / tb
}

// RunPipeline sweeps the batched creation pipeline over the configured
// batch sizes — a fresh deployment per size so points are independent —
// and runs the serial-vs-batch determinism check.
func RunPipeline(seed int64, opts PipelineOptions) (*PipelineResult, error) {
	opts = opts.withDefaults()
	res := &PipelineResult{Plants: opts.Plants, MemoryMB: opts.MemoryMB}
	for i, size := range opts.Sizes {
		pt, err := runBatchPoint(seed+int64(i)*1000, opts, size)
		if err != nil {
			return nil, err
		}
		res.Batches = append(res.Batches, pt)
	}
	serial, err := creationFingerprint(seed, false)
	if err != nil {
		return nil, err
	}
	batch, err := creationFingerprint(seed, true)
	if err != nil {
		return nil, err
	}
	res.SerialFingerprint = serial
	res.BatchFingerprint = batch
	res.DeterminismOK = serial == batch
	return res, nil
}

func runBatchPoint(seed int64, opts PipelineOptions, size int) (BatchPoint, error) {
	hub := telemetry.New()
	d, err := NewDeployment(Options{
		Plants:        opts.Plants,
		Seed:          seed,
		GoldenSizesMB: []int{opts.MemoryMB},
		Telemetry:     hub,
	})
	if err != nil {
		return BatchPoint{}, err
	}
	d.Shop.BidTimeout = opts.BidTimeout

	specs := make([]*core.Spec, size)
	for i := range specs {
		specs[i], err = d.WorkspaceSpec(i+1, opts.MemoryMB)
		if err != nil {
			return BatchPoint{}, err
		}
	}
	pt := BatchPoint{Size: size}
	var results []shop.BatchResult
	err = d.Run(func(p *sim.Proc) {
		start := p.Now()
		results = d.Shop.CreateMany(p, specs)
		pt.MakespanSecs = (p.Now() - start).Seconds()
	})
	if err != nil {
		return BatchPoint{}, err
	}
	for _, r := range results {
		if r.Err != nil {
			pt.Failed++
		} else {
			pt.OK++
		}
	}
	if pt.MakespanSecs > 0 {
		pt.Throughput = float64(pt.OK) / pt.MakespanSecs
	}
	pt.CacheHits, pt.CacheMisses = d.Warehouse.CacheStats()
	pt.AdmissionWait = hub.Histogram("plant.admission_wait_secs").Snapshot()
	for _, pl := range d.Plants {
		if m := pl.MaxInflightClones(); m > pt.MaxInflight {
			pt.MaxInflight = m
		}
	}
	return pt, nil
}

// creationFingerprint creates one VM on a fresh default deployment —
// serially through Shop.Create, or through the batch pipeline when
// batch is set — and digests everything observable about the creation:
// the plant-side creation log, the bidding round, and the client-facing
// outcome. Identical fingerprints mean the pipeline left the serial
// path byte-identical.
func creationFingerprint(seed int64, batch bool) (string, error) {
	d, err := NewDeployment(Options{Seed: seed})
	if err != nil {
		return "", err
	}
	spec, err := d.WorkspaceSpec(1, 64)
	if err != nil {
		return "", err
	}
	var lines []string
	err = d.Run(func(p *sim.Proc) {
		var id core.VMID
		var cerr error
		if batch {
			r := d.Shop.CreateMany(p, []*core.Spec{spec})[0]
			id, cerr = r.VMID, r.Err
		} else {
			id, _, cerr = d.Shop.Create(p, spec)
		}
		lines = append(lines, fmt.Sprintf("outcome id=%s err=%v end=%s", id, cerr, p.Now()))
	})
	if err != nil {
		return "", err
	}
	for i, pl := range d.Plants {
		for _, cs := range pl.CreationLog() {
			lines = append(lines, fmt.Sprintf(
				"plant=%d vmid=%s mem=%d mode=%v copied=%d linked=%d copy=%s resume=%s clone=%s cfg=%s total=%s matched=%d residual=%d golden=%s hit=%v",
				i, cs.VMID, cs.MemoryMB, cs.Clone.Mode, cs.Clone.CopiedBytes,
				cs.Clone.LinkedFiles, cs.Clone.CopyTime, cs.Clone.ResumeTime,
				cs.Clone.Total, cs.ConfigTime, cs.Total, cs.MatchedOps,
				cs.ResidualOps, cs.Golden, cs.PrecreateHit))
		}
	}
	for _, rec := range d.Shop.Bids() {
		plants := make([]string, 0, len(rec.Costs))
		for name := range rec.Costs {
			plants = append(plants, name)
		}
		sort.Strings(plants)
		var costs []string
		for _, name := range plants {
			costs = append(costs, fmt.Sprintf("%s=%v", name, rec.Costs[name]))
		}
		lines = append(lines, fmt.Sprintf("bid vmid=%s winner=%s costs=[%s]",
			rec.VMID, rec.Winner, strings.Join(costs, " ")))
	}
	return strings.Join(lines, "\n"), nil
}
