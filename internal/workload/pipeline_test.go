package workload

import "testing"

// The pipeline run is the acceptance gate for batched creation: bigger
// batches must raise throughput, the cache must be warm after the first
// clone of each golden image, and a single-request creation must stay
// byte-identical to the serial path.
func TestPipelineRunSmoke(t *testing.T) {
	res, err := RunPipeline(42, PipelineOptions{Sizes: []int{1, 4, 16}})
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	if len(res.Batches) != 3 {
		t.Fatalf("%d batch points, want 3", len(res.Batches))
	}
	for _, b := range res.Batches {
		if b.Failed != 0 || b.OK != b.Size {
			t.Errorf("batch %d: ok=%d failed=%d", b.Size, b.OK, b.Failed)
		}
		if b.Throughput <= 0 {
			t.Errorf("batch %d: throughput = %v", b.Size, b.Throughput)
		}
		// One golden image: the first clone misses, the rest must hit.
		if b.CacheMisses != 1 || b.CacheHits != int64(b.Size-1) {
			t.Errorf("batch %d: cache hits=%d misses=%d", b.Size, b.CacheHits, b.CacheMisses)
		}
	}
	if s := res.SpeedupOver(16, 1); s < 3 {
		t.Errorf("batch-16 speedup over batch-1 = %.2fx, want >= 3x", s)
	}
	if !res.DeterminismOK {
		t.Errorf("serial and single-batch creation logs diverged:\n--- serial ---\n%s\n--- batch ---\n%s",
			res.SerialFingerprint, res.BatchFingerprint)
	}
	// The derived per-plant cap is 3 on the default node; a batch of 16
	// over 8 plants must actually drive plants into concurrent cloning.
	if last := res.Batches[2]; last.MaxInflight < 2 {
		t.Errorf("max in-flight clones = %d; batching produced no concurrency", last.MaxInflight)
	}
}

func TestPipelineRunDeterministicAcrossRuns(t *testing.T) {
	opts := PipelineOptions{Sizes: []int{4}}
	a, err := RunPipeline(7, opts)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	b, err := RunPipeline(7, opts)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if a.Batches[0] != b.Batches[0] {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Batches[0], b.Batches[0])
	}
	if a.SerialFingerprint != b.SerialFingerprint {
		t.Fatal("serial fingerprints diverged across same-seed runs")
	}
}
