package workload

import (
	"fmt"
	"sort"

	"vmplants/internal/actions"
	"vmplants/internal/dag"
	"vmplants/internal/sim"
)

// RandomDAG generates a valid random configuration DAG with n package
// installs over a base OS, with random extra ordering edges — the
// generator behind the matcher's property tests. Every generated graph
// validates and passes the action catalog's checks.
func RandomDAG(rng *sim.RNG, n int) (*dag.Graph, error) {
	if n < 1 {
		n = 1
	}
	b := dag.NewBuilder()
	b.Add("os", act(actions.OpInstallOS, "distro", "redhat-8.0"))
	ids := []string{"os"}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("p%03d", i)
		// Depend on 1..3 random earlier nodes (always at least the OS
		// chain's reachability via some earlier node).
		deps := map[string]bool{}
		nDeps := 1 + rng.Intn(3)
		for j := 0; j < nDeps; j++ {
			deps[ids[rng.Intn(len(ids))]] = true
		}
		var depList []string
		for d := range deps {
			depList = append(depList, d)
		}
		sort.Strings(depList) // full determinism, independent of map order
		b.Add(id, act(actions.OpInstallPackage, "name", id), depList...)
		ids = append(ids, id)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := actions.Validate(g); err != nil {
		return nil, err
	}
	return g, nil
}

// TopoPrefixActions returns the actions of the first k nodes of a
// deterministic topological order of g — a history guaranteed to pass
// all three matching tests.
func TopoPrefixActions(g *dag.Graph, k int) ([]dag.Action, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	var out []dag.Action
	for _, id := range topo {
		if id == dag.StartID || id == dag.FinishID {
			continue
		}
		if len(out) >= k {
			break
		}
		n, _ := g.Node(id)
		out = append(out, n.Action)
	}
	return out, nil
}
