package workload

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/journal"
	"vmplants/internal/plant"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
)

// The restart experiment is the kill-9 gate for the journaled control
// plane: shop daemons are killed at the worst possible instants — after
// the creation intent is durable but before dispatch, and after the
// plant built the VM but before the commit — plants crash and recover
// mid-run, and the warehouse daemon restarts with an image in
// quarantine. The run passes only if every creation is exactly-once
// (zero lost, zero duplicated), the quarantine survives the warehouse
// restart, and two runs with the same seed produce byte-identical
// fingerprints.

// RestartOptions configures a restart run.
type RestartOptions struct {
	Plants   int // default 4
	Requests int // default 24
	MemoryMB int // default 64
	// KillEvery arms a shop kill before every KillEvery-th request,
	// alternating between the "intent" and "commit" kill points
	// (default 6).
	KillEvery int
	// RestartAfter is how long the supervisor waits before restarting a
	// killed shop daemon (default 5 s virtual).
	RestartAfter time.Duration
	// ClientRetries bounds request re-submissions (default 8).
	ClientRetries int
}

func (o RestartOptions) withDefaults() RestartOptions {
	if o.Plants == 0 {
		o.Plants = 4
	}
	if o.Requests == 0 {
		o.Requests = 24
	}
	if o.MemoryMB == 0 {
		o.MemoryMB = 64
	}
	if o.KillEvery == 0 {
		o.KillEvery = 6
	}
	if o.RestartAfter == 0 {
		o.RestartAfter = 5 * time.Second
	}
	if o.ClientRetries == 0 {
		o.ClientRetries = 8
	}
	return o
}

// RestartResult reports what a restart run proved.
type RestartResult struct {
	Requests  int
	Succeeded int
	// ShopKills / ShopRestarts count daemon deaths and revivals.
	ShopKills    int64
	ShopRestarts int64
	// Redriven / Reconciled / Deduped are the exactly-once machinery's
	// counters: intents re-driven from the journal, intents found
	// already built, and client retries answered from the dedupe index.
	Redriven   int64
	Reconciled int64
	Deduped    int64
	// Lost counts acknowledged creations whose VM cannot be found;
	// Duplicated counts VMs on plants beyond the acknowledged set. Both
	// must be zero.
	Lost       int
	Duplicated int
	// RoutesFinal is how many routes the final kill→restart rebuilt
	// purely from the journal.
	RoutesFinal int
	// QuarantineSurvived is whether the quarantined image stayed out of
	// service across the warehouse daemon restart.
	QuarantineSurvived bool
	PlantCrashes       int64
	PlantRecoveries    int64
	// TornTails counts journal records truncated during replays (zero:
	// kills land at sync boundaries, so the log is always clean).
	TornTails int64
	// JournalRecords is the shop journal's final record count.
	JournalRecords int
	// Fingerprint digests every outcome; two runs with the same seed
	// must produce identical fingerprints.
	Fingerprint string
}

// RunRestart drives a creation series through a deployment whose
// control-plane daemons are journaled, killing and restarting them
// mid-flight, and audits exactly-once semantics at the end.
func RunRestart(seed int64, opts RestartOptions) (*RestartResult, error) {
	opts = opts.withDefaults()
	hub := telemetry.New()

	reg := fault.NewRegistry(seed + 104729)
	reg.SetTelemetry(hub)

	d, err := NewDeployment(Options{
		Plants:      opts.Plants,
		Seed:        seed,
		Telemetry:   hub,
		PlantConfig: plant.Config{Faults: reg},
	})
	if err != nil {
		return nil, err
	}
	d.Shop.Faults = reg

	// Journals: the shop's on its own dedicated log volume, each
	// plant's on its node's local disk, the warehouse's on the shared
	// warehouse volume (which backfills the already-published catalog).
	logVol := storage.NewVolume("shop-log", storage.NewDevice("shop-log-disk", 64<<20, 100*time.Microsecond))
	jnl := journal.Open(logVol, "journal/shop")
	jnl.SetTelemetry(hub)
	d.Shop.SetJournal(jnl)
	for i, pl := range d.Plants {
		pl.SetJournal(journal.Open(d.Testbed.Nodes[i].LocalDisk(), "journal/"+pl.Name()))
	}
	d.Warehouse.SetJournal(journal.Open(d.Testbed.Warehouse, "journal/warehouse"))

	res := &RestartResult{Requests: opts.Requests}
	var lines []string // fingerprint material
	created := make(map[string]core.VMID)
	var order []string
	var runErr error
	err = d.Run(func(p *sim.Proc) {
		crashPlantAt := opts.Requests / 2
		quarantineAt := 2 * opts.Requests / 3
		for i := 1; i <= opts.Requests; i++ {
			// Arm a kill-9 at the worst instants: odd kills die with the
			// intent durable but undispatched, even kills die with the VM
			// built but uncommitted.
			if opts.KillEvery > 0 && i%opts.KillEvery == 0 {
				op := "intent"
				if (i/opts.KillEvery)%2 == 0 {
					op = "commit"
				}
				reg.Arm("shop", fault.DaemonKill, op, 1)
				lines = append(lines, fmt.Sprintf("armed kill at %s before req %d", op, i))
			}
			if i == crashPlantAt && len(d.Plants) > 0 {
				d.Plants[0].Crash()
				lines = append(lines, fmt.Sprintf("plant %s crashed before req %d", d.Plants[0].Name(), i))
			}
			if i == quarantineAt {
				name := GoldenName(256, d.Opts.Backend)
				d.Warehouse.Quarantine(name, "scrub: checksum mismatch (injected)")
				st := d.Warehouse.Restart()
				res.QuarantineSurvived = d.Warehouse.IsQuarantined(name)
				lines = append(lines, fmt.Sprintf("warehouse restart before req %d: restored=%d mismatch=%d survived=%v",
					i, st.QuarantineRestored, st.CatalogMismatch, res.QuarantineSurvived))
			}

			spec, err := d.WorkspaceSpec(i, opts.MemoryMB)
			if err != nil {
				runErr = err
				return
			}
			spec.RequestID = fmt.Sprintf("req-%04d", i)
			var id core.VMID
			for try := 0; ; try++ {
				var cerr error
				id, _, cerr = d.Shop.Create(p, spec)
				if cerr == nil {
					break
				}
				if try >= opts.ClientRetries {
					lines = append(lines, fmt.Sprintf("req %d FAILED %v", i, cerr))
					id = ""
					break
				}
				if errors.Is(cerr, shop.ErrShopDown) {
					// Supervisor: wait out the death, restart the daemon
					// from its journal, then re-submit under the same
					// request ID — the dedupe index absorbs the retry.
					p.Sleep(opts.RestartAfter)
					st, rerr := d.Shop.Restart(p)
					if rerr != nil {
						runErr = rerr
						return
					}
					lines = append(lines, fmt.Sprintf("shop restart: replayed=%d routes=%d reconciled=%d redriven=%d aborted=%d",
						st.Replayed, st.Routes, st.Reconciled, st.Redriven, st.Aborted))
					res.TornTails += int64(st.TornTails)
					continue
				}
				p.Sleep(2 * time.Second)
			}
			if id == "" {
				continue
			}
			created[spec.RequestID] = id
			order = append(order, spec.RequestID)
			res.Succeeded++
			lines = append(lines, fmt.Sprintf("req %d ok %s route=%s", i, id, d.Shop.RouteOf(id)))
		}

		// The crashed plant's daemon comes back; its journal replay
		// cross-checks the host scan.
		for _, pl := range d.Plants {
			pl.Recover(p)
		}

		// Final kill→restart with nothing in flight: the route table must
		// come back purely from the journal, one route per live VM.
		d.Shop.Kill()
		st, rerr := d.Shop.Restart(p)
		if rerr != nil {
			runErr = rerr
			return
		}
		res.RoutesFinal = st.Routes
		res.TornTails += int64(st.TornTails)
		lines = append(lines, fmt.Sprintf("final restart: replayed=%d routes=%d", st.Replayed, st.Routes))

		// Exactly-once audit, half one: every acknowledged creation is
		// queryable through the restarted shop.
		for _, req := range order {
			if _, qerr := d.Shop.Query(p, created[req]); qerr != nil {
				res.Lost++
				lines = append(lines, fmt.Sprintf("LOST %s (%s): %v", created[req], req, qerr))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}

	// Exactly-once audit, half two: the plants hold exactly one VM per
	// acknowledged request — no duplicates from re-driven intents, and
	// no two requests answered with the same VM.
	unique := make(map[core.VMID]bool)
	for _, id := range created {
		unique[id] = true
	}
	live := 0
	for _, pl := range d.Plants {
		live += pl.ActiveVMs()
	}
	res.Duplicated = live - len(unique)
	if len(unique) < len(created) {
		res.Duplicated += len(created) - len(unique) // two requests share a VM
	}

	res.ShopKills = hub.Counter("shop.crashes").Value()
	res.ShopRestarts = hub.Counter("shop.restarts").Value()
	res.Redriven = hub.Counter("shop.redriven_creates").Value()
	res.Reconciled = hub.Counter("shop.reconciled_creates").Value()
	res.Deduped = hub.Counter("shop.deduped_creates").Value()
	res.PlantCrashes = hub.Counter("plant.crashes").Value()
	res.PlantRecoveries = hub.Counter("plant.recoveries").Value()
	res.JournalRecords = len(jnl.Records())

	lines = append(lines, reg.Summary()...)
	lines = append(lines, fmt.Sprintf("kills=%d restarts=%d redriven=%d reconciled=%d deduped=%d lost=%d dup=%d torn=%d records=%d",
		res.ShopKills, res.ShopRestarts, res.Redriven, res.Reconciled, res.Deduped,
		res.Lost, res.Duplicated, res.TornTails, res.JournalRecords))
	res.Fingerprint = strings.Join(lines, "\n")
	return res, nil
}

// Report renders the run as printable lines.
func (r *RestartResult) Report() []string {
	return []string{
		fmt.Sprintf("requests:            %d", r.Requests),
		fmt.Sprintf("succeeded:           %d (%.0f%%)", r.Succeeded, 100*float64(r.Succeeded)/float64(r.Requests)),
		fmt.Sprintf("shop kills:          %d (restarts %d)", r.ShopKills, r.ShopRestarts),
		fmt.Sprintf("intents re-driven:   %d", r.Redriven),
		fmt.Sprintf("intents reconciled:  %d", r.Reconciled),
		fmt.Sprintf("retries deduped:     %d", r.Deduped),
		fmt.Sprintf("plant crashes:       %d (recoveries %d)", r.PlantCrashes, r.PlantRecoveries),
		fmt.Sprintf("quarantine survived: %v", r.QuarantineSurvived),
		fmt.Sprintf("routes (final):      %d", r.RoutesFinal),
		fmt.Sprintf("journal records:     %d (torn tails %d)", r.JournalRecords, r.TornTails),
		fmt.Sprintf("lost creations:      %d", r.Lost),
		fmt.Sprintf("duplicated VMs:      %d", r.Duplicated),
	}
}
