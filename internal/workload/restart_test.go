package workload

import (
	"testing"
)

// The restart run is the acceptance gate for the journaled control
// plane: kill-9 at the write-ahead protocol's worst instants must
// still yield exactly-once creations — zero lost, zero duplicated —
// with routes, quarantine and the catalog rebuilt from the journal.
func TestRestartRunIsExactlyOnce(t *testing.T) {
	res, err := RunRestart(42, RestartOptions{})
	if err != nil {
		t.Fatalf("RunRestart: %v", err)
	}
	if res.Succeeded != res.Requests {
		t.Fatalf("succeeded %d of %d requests:\n%s", res.Succeeded, res.Requests, res.Fingerprint)
	}
	if res.Lost != 0 {
		t.Errorf("%d acknowledged creations lost:\n%s", res.Lost, res.Fingerprint)
	}
	if res.Duplicated != 0 {
		t.Errorf("%d duplicated VMs:\n%s", res.Duplicated, res.Fingerprint)
	}
	if res.ShopKills == 0 {
		t.Error("no shop kills fired; the run exercised nothing")
	}
	if res.Redriven == 0 && res.Reconciled == 0 {
		t.Errorf("kills fired but no intent was re-driven or reconciled (kills=%d):\n%s",
			res.ShopKills, res.Fingerprint)
	}
	if !res.QuarantineSurvived {
		t.Error("quarantine did not survive the warehouse restart")
	}
	if res.RoutesFinal != res.Succeeded {
		t.Errorf("final restart rebuilt %d routes, want %d", res.RoutesFinal, res.Succeeded)
	}
	if res.TornTails != 0 {
		t.Errorf("%d torn tails in a sync-boundary kill schedule", res.TornTails)
	}
	if res.PlantCrashes == 0 || res.PlantRecoveries == 0 {
		t.Errorf("plant crash/recover leg did not run (crashes=%d recoveries=%d)",
			res.PlantCrashes, res.PlantRecoveries)
	}
}

func TestRestartRunDeterministicAcrossRuns(t *testing.T) {
	a, err := RunRestart(7, RestartOptions{Requests: 12})
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	b, err := RunRestart(7, RestartOptions{Requests: 12})
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same seed, different outcomes:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			a.Fingerprint, b.Fingerprint)
	}
	c, err := RunRestart(8, RestartOptions{Requests: 12})
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if a.Fingerprint == c.Fingerprint {
		t.Error("different seeds produced identical fingerprints; seed is not wired through")
	}
}
