// Package workload builds the experiment scenarios of the paper's
// evaluation: the In-VIGO virtual-workspace configuration DAG of
// Figure 3, the golden images of §4.2, full simulated deployments
// (8-node cluster, warehouse, plants, shop), and runners that regenerate
// every figure and table (see EXPERIMENTS.md).
package workload

import (
	"fmt"

	"vmplants/internal/actions"
	"vmplants/internal/dag"
)

func act(op string, kv ...string) dag.Action {
	p := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		p[kv[i]] = kv[i+1]
	}
	tgt, _ := actions.DefaultTarget(op)
	if len(p) == 0 {
		p = nil
	}
	return dag.Action{Op: op, Target: tgt, Params: p}
}

// InVigoGoldenHistory is the configuration recorded on the In-VIGO
// golden machine (Figure 3 operations A, B, C): Red Hat 8.0, a VNC
// server, and the web file manager.
func InVigoGoldenHistory() []dag.Action {
	return []dag.Action{
		act(actions.OpInstallOS, "distro", "redhat-8.0"),
		act(actions.OpInstallPackage, "name", "vnc-server"),
		act(actions.OpInstallPackage, "name", "web-file-manager"),
	}
}

// InVigoDAG builds the full Figure 3 client DAG for one user: the
// golden prefix A–C followed by the personalization D–I (configure
// MAC/IP, create the user, mount the home directory, configure the VNC
// server, start both services).
func InVigoDAG(user, mac, ip string) (*dag.Graph, error) {
	return dag.NewBuilder().
		Add("A", act(actions.OpInstallOS, "distro", "redhat-8.0")).
		Add("B", act(actions.OpInstallPackage, "name", "vnc-server"), "A").
		Add("C", act(actions.OpInstallPackage, "name", "web-file-manager"), "B").
		Add("D", act(actions.OpConfigureNetwork, "mac", mac, "ip", ip), "C").
		Add("E", act(actions.OpCreateUser, "name", user), "D").
		Add("F", act(actions.OpMountFS, "source", "nfs:/home/"+user, "mountpoint", "/home/"+user), "E").
		Add("G", act(actions.OpConfigureService, "name", "vnc"), "F").
		Add("I", act(actions.OpStartService, "name", "file-manager"), "F").
		Add("H", act(actions.OpStartService, "name", "vnc"), "G").
		Build()
}

// InVigoUserEnvDAG is InVigoDAG plus one per-user environment package
// (node J, hanging off the home-directory mount): the user's
// application stack. It is by far the most expensive personalization
// step, which makes it exactly what a derived golden image saves on
// repeat requests — the warm experiment's workload.
func InVigoUserEnvDAG(user, mac, ip string) (*dag.Graph, error) {
	return dag.NewBuilder().
		Add("A", act(actions.OpInstallOS, "distro", "redhat-8.0")).
		Add("B", act(actions.OpInstallPackage, "name", "vnc-server"), "A").
		Add("C", act(actions.OpInstallPackage, "name", "web-file-manager"), "B").
		Add("D", act(actions.OpConfigureNetwork, "mac", mac, "ip", ip), "C").
		Add("E", act(actions.OpCreateUser, "name", user), "D").
		Add("F", act(actions.OpMountFS, "source", "nfs:/home/"+user, "mountpoint", "/home/"+user), "E").
		Add("J", act(actions.OpInstallPackage, "name", "env-"+user), "F").
		Add("G", act(actions.OpConfigureService, "name", "vnc"), "F").
		Add("I", act(actions.OpStartService, "name", "file-manager"), "F").
		Add("H", act(actions.OpStartService, "name", "vnc"), "G").
		Build()
}

// GenericDAG is the un-personalized workspace DAG: exactly the golden
// history, nothing more. Template-style provisioning (ablation A2) can
// serve it from an exact-match image.
func GenericDAG() (*dag.Graph, error) {
	b := dag.NewBuilder()
	prev := []string{}
	for i, a := range InVigoGoldenHistory() {
		id := fmt.Sprintf("g%d", i)
		b.Add(id, a, prev...)
		prev = []string{id}
	}
	return b.Build()
}
