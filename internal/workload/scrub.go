package workload

import (
	"fmt"
	"strings"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
)

// The scrub experiment proves the end-to-end integrity invariant under
// attack: a Zipf workspace stream (publish-back on, so the image DAG
// grows derived checkpoints mid-run) runs while corrupt-extent faults
// scramble warehouse state on clone reads and scrub reads, and
// torn-write faults corrupt publications as they land. The system must
// never resume a creation from unverified state, must quarantine every
// detected corruption, and must heal itself: seeds from the replica
// device, derived images by DAG replay against their parent. The
// end-of-run audit — every image verifies clean, nothing left in
// quarantine, seeds intact — is the zero-silent-corruption proof:
// corrupted checksums persist until repaired, and repairs only follow
// detection, so a clean end state means nothing slipped through.

// ScrubOptions tunes RunScrub.
type ScrubOptions struct {
	// Plants is the cluster size (default 4).
	Plants int
	// MemoryMB is the workspace size (default 64).
	MemoryMB int
	// Requests is the stream length (default 40).
	Requests int
	// Users is the Zipf catalog size (default 10).
	Users int
	// ZipfS is the skew exponent (default 1.2).
	ZipfS float64
	// DerivedBudgetMB is warehouse room for derived checkpoints beyond
	// the seeds (default 600).
	DerivedBudgetMB int
	// Threshold is the publish-back residual threshold (default: the
	// plant's own default).
	Threshold int
	// CorruptProb is the corrupt-extent probability per verifying clone
	// read, i.e. per clone-cache fill (default 0.05; the acceptance
	// floor is 0.01).
	CorruptProb float64
	// ScrubCorruptProb is the corrupt-extent probability per image per
	// scrub pass — bit rot the scrubber itself discovers (default 0.02).
	ScrubCorruptProb float64
	// TornWriteProb corrupts a publication as it lands; the damage is
	// latent until the next clone miss or scrub read (default 0.15 —
	// publications are rare, one per distinct configuration).
	TornWriteProb float64
	// ScrubInterval is the background scrubber's cadence (default 30 s
	// of virtual time).
	ScrubInterval time.Duration
	// CacheSize shrinks the hot clone cache so opens miss — and
	// therefore verify — often (default 2).
	CacheSize int
	// ClientRetries bounds re-submissions of a request that failed
	// while the matching images sat in quarantine (default 10).
	ClientRetries int
	// RetryDelay is the client's backoff between re-submissions; it
	// must exceed ScrubInterval so a repair can land in between
	// (default 45 s).
	RetryDelay time.Duration
}

func (o ScrubOptions) withDefaults() ScrubOptions {
	if o.Plants == 0 {
		o.Plants = 4
	}
	if o.MemoryMB == 0 {
		o.MemoryMB = 64
	}
	if o.Requests == 0 {
		o.Requests = 40
	}
	if o.Users == 0 {
		o.Users = 10
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.2
	}
	if o.DerivedBudgetMB == 0 {
		o.DerivedBudgetMB = 600
	}
	if o.CorruptProb == 0 {
		o.CorruptProb = 0.05
	}
	if o.ScrubCorruptProb == 0 {
		o.ScrubCorruptProb = 0.02
	}
	if o.TornWriteProb == 0 {
		o.TornWriteProb = 0.15
	}
	if o.ScrubInterval == 0 {
		o.ScrubInterval = 30 * time.Second
	}
	if o.CacheSize == 0 {
		o.CacheSize = 2
	}
	if o.ClientRetries == 0 {
		o.ClientRetries = 10
	}
	if o.RetryDelay == 0 {
		o.RetryDelay = 45 * time.Second
	}
	return o
}

// SmokeScrubOptions is the scaled-down CI variant.
func SmokeScrubOptions() ScrubOptions {
	return ScrubOptions{Plants: 2, Requests: 20, Users: 6, DerivedBudgetMB: 375}
}

// ScrubResult is the chaos-integrity measurement.
type ScrubResult struct {
	Requests      int
	Succeeded     int
	Failed        int
	ClientRetries int

	VerifiedClones int64 // plant.verified_clones
	Injected       int64 // corrupt-extent + torn-write injections
	Detected       int64 // warehouse.corruptions_detected
	Quarantines    int64
	Repairs        int64
	RepairBytes    int64
	Retirements    int64 // scrub retirements of unrepairable images
	ScrubPasses    int64
	ScrubVerified  int64

	// End-of-run audit.
	InQuarantine int      // images still quarantined
	DirtyAtEnd   []string // images failing the final deep verify
	SeedsIntact  bool

	Injections map[string]int64
	// Fingerprint digests every observable; equal fingerprints across
	// same-seed reruns prove the whole detect/quarantine/repair loop is
	// deterministic.
	Fingerprint string
}

// Report renders the result as printable lines.
func (r *ScrubResult) Report() []string {
	return []string{
		fmt.Sprintf("requests:          %d (%d failed, %d client retries)", r.Requests, r.Failed, r.ClientRetries),
		fmt.Sprintf("verified clones:   %d (every completed creation resumed from verified state)", r.VerifiedClones),
		fmt.Sprintf("corruptions:       %d injected, %d detected", r.Injected, r.Detected),
		fmt.Sprintf("quarantines:       %d (repairs %d, retired %d, still quarantined %d)",
			r.Quarantines, r.Repairs, r.Retirements, r.InQuarantine),
		fmt.Sprintf("repair bytes:      %d", r.RepairBytes),
		fmt.Sprintf("scrub passes:      %d (%d clean verifications)", r.ScrubPasses, r.ScrubVerified),
		fmt.Sprintf("end audit:         dirty=%d seeds intact=%v", len(r.DirtyAtEnd), r.SeedsIntact),
	}
}

// Check enforces the experiment's gates; a non-nil error means the
// integrity invariant was violated.
func (r *ScrubResult) Check() error {
	switch {
	case r.Failed > 0:
		return fmt.Errorf("scrub: %d of %d requests never succeeded", r.Failed, r.Requests)
	case r.Injected == 0:
		return fmt.Errorf("scrub: no corruption was injected; the run proves nothing")
	case r.Detected == 0:
		return fmt.Errorf("scrub: %d corruptions injected but none detected", r.Injected)
	case r.Quarantines == 0:
		return fmt.Errorf("scrub: corruption detected but nothing quarantined")
	case r.Repairs == 0:
		return fmt.Errorf("scrub: nothing was ever repaired")
	case int64(r.Succeeded) > r.VerifiedClones:
		return fmt.Errorf("scrub: %d creations succeeded but only %d clones verified — a creation resumed unverified state",
			r.Succeeded, r.VerifiedClones)
	case r.InQuarantine > 0:
		return fmt.Errorf("scrub: %d images leaked in quarantine at end of run", r.InQuarantine)
	case len(r.DirtyAtEnd) > 0:
		return fmt.Errorf("scrub: silent corruption — %v failed the final deep verify without ever being detected", r.DirtyAtEnd)
	case !r.SeedsIntact:
		return fmt.Errorf("scrub: a seed image was lost or left quarantined")
	}
	return nil
}

// RunScrub replays the Zipf stream under corruption injection with the
// background scrubber healing the warehouse, then audits the end state.
func RunScrub(seed int64, opts ScrubOptions) (*ScrubResult, error) {
	opts = opts.withDefaults()
	hub := telemetry.New()

	reg := fault.NewRegistry(seed + 104729)
	reg.SetTelemetry(hub)

	d, err := NewDeployment(Options{
		Plants:        opts.Plants,
		Seed:          seed,
		GoldenSizesMB: []int{opts.MemoryMB},
		Telemetry:     hub,
		PlantConfig: plant.Config{
			Faults:               reg,
			PublishBack:          true,
			PublishBackThreshold: opts.Threshold,
		},
	})
	if err != nil {
		return nil, err
	}
	seeds := d.Warehouse.List()
	d.Warehouse.SetCapacity(d.Warehouse.BytesUsed() + int64(opts.DerivedBudgetMB)<<20)
	d.Warehouse.SetCloneCacheSize(opts.CacheSize)

	// The replica device: the site's second copy of the installer-laid
	// seed extents, and the repair source for seed corruption. Mirrored
	// before any fault rule arms, so the replica is clean by
	// construction.
	replica := storage.NewVolume("replica", storage.NewDevice("replica-disk", 40<<20, 2*time.Millisecond))
	d.Warehouse.SetReplica(replica)
	d.Warehouse.SetFaults(reg)
	reg.SetProb("warehouse", fault.CorruptExtent, "clone", opts.CorruptProb)
	reg.SetProb("warehouse", fault.CorruptExtent, "scrub", opts.ScrubCorruptProb)
	reg.SetProb("warehouse", fault.TornWrite, "publish", opts.TornWriteProb)

	// Zipf user stream, drawn up front: catalog sweep, then skewed tail.
	rng := sim.NewRNG(seed*31 + 7)
	users := make([]int, opts.Requests)
	sweep := opts.Users
	if sweep > opts.Requests/2 {
		sweep = opts.Requests / 2
	}
	for i := 0; i < sweep; i++ {
		users[i] = i
	}
	for i := sweep; i < opts.Requests; i++ {
		users[i] = rng.Zipf(opts.Users, opts.ZipfS)
	}

	res := &ScrubResult{Requests: opts.Requests}
	var lines []string
	scrubber := d.Warehouse.NewScrubber(opts.ScrubInterval)
	var runErr error
	err = d.Run(func(p *sim.Proc) {
		scrubber.Start(p.Kernel())
		for i, user := range users {
			spec, err := warmSpec(d, user+1, opts.MemoryMB)
			if err != nil {
				runErr = err
				return
			}
			var id core.VMID
			ok := false
			for try := 0; ; try++ {
				cid, ad, cerr := d.Shop.Create(p, spec)
				if cerr == nil {
					id = cid
					ok = true
					lines = append(lines, fmt.Sprintf("req=%d user=%d ok golden=%s tries=%d t=%.3f",
						i+1, user, ad.GetString(core.AttrGoldenImage, ""), try+1, p.Now().Seconds()))
					break
				}
				if try >= opts.ClientRetries {
					lines = append(lines, fmt.Sprintf("req=%d user=%d FAILED %v", i+1, user, cerr))
					break
				}
				// The matching images may all sit in quarantine; back
				// off past a scrub interval so a repair can land.
				res.ClientRetries++
				p.Sleep(opts.RetryDelay)
			}
			if !ok {
				res.Failed++
				continue
			}
			res.Succeeded++
			// The workspace session ends immediately so derived images
			// stay unreferenced (retirable) between requests.
			if derr := d.Shop.Destroy(p, id); derr != nil {
				runErr = derr
				return
			}
		}
		// Drain: off-critical-path publish-backs finish and the
		// background scrubber works through any remaining quarantine.
		p.Sleep(20 * opts.ScrubInterval)
		// Final synchronous passes: at least one, so a torn write still
		// latent from a late publish-back is detected and healed before
		// the audit; extras settle multi-pass repairs.
		d.Warehouse.ScrubPass(p)
		for i := 0; i < 4 && len(d.Warehouse.Quarantined()) > 0; i++ {
			d.Warehouse.ScrubPass(p)
		}
		scrubber.Stop()
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}

	res.VerifiedClones = hub.Counter("plant.verified_clones").Value()
	res.Injected = reg.Total(fault.CorruptExtent) + reg.Total(fault.TornWrite)
	stats := d.Warehouse.ScrubStatsNow()
	res.Detected = stats.Corruptions
	res.Quarantines = stats.Quarantines
	res.Repairs = stats.Repairs
	res.RepairBytes = stats.RepairBytes
	res.Retirements = stats.Retirements
	res.ScrubPasses = stats.Passes
	res.ScrubVerified = stats.Verified
	res.InQuarantine = stats.InQuarantine
	res.DirtyAtEnd = d.Warehouse.DirtyImages()
	res.Injections = reg.Counts()
	res.SeedsIntact = true
	for _, s := range seeds {
		if _, ok := d.Warehouse.Lookup(s); !ok || d.Warehouse.IsQuarantined(s) {
			res.SeedsIntact = false
		}
	}

	lines = append(lines, reg.Summary()...)
	lines = append(lines, fmt.Sprintf("verified=%d detected=%d quarantines=%d repairs=%d repair_bytes=%d retired=%d passes=%d",
		res.VerifiedClones, res.Detected, res.Quarantines, res.Repairs, res.RepairBytes, res.Retirements, res.ScrubPasses))
	lines = append(lines, fmt.Sprintf("end images=[%s] quarantine=[%s] dirty=[%s]",
		strings.Join(d.Warehouse.List(), " "),
		strings.Join(d.Warehouse.Quarantined(), " "),
		strings.Join(res.DirtyAtEnd, " ")))
	res.Fingerprint = strings.Join(lines, "\n")
	return res, nil
}
