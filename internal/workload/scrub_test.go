package workload

import (
	"testing"
)

// The scrub run is the acceptance gate for the integrity layer: under
// injected corruption every completed creation must have resumed from
// verified state, every detected corruption must be quarantined and
// either repaired or retired, seeds must survive, and the end-of-run
// deep audit must come back clean.
func TestScrubRunSmoke(t *testing.T) {
	res, err := RunScrub(42, SmokeScrubOptions())
	if err != nil {
		t.Fatalf("RunScrub: %v", err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("integrity gate: %v", err)
	}
	if res.Injected == 0 || res.Detected == 0 {
		t.Errorf("injected=%d detected=%d — the run attacked nothing", res.Injected, res.Detected)
	}
	if res.Repairs == 0 {
		t.Error("the scrubber repaired nothing")
	}
}

func TestScrubRunDeterministicAcrossRuns(t *testing.T) {
	opts := SmokeScrubOptions()
	a, err := RunScrub(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScrub(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("same-seed scrub runs diverged:\n--- first ---\n%s\n--- second ---\n%s",
			a.Fingerprint, b.Fingerprint)
	}
}

// A clean system — no fault rules armed — must sail through the same
// pipeline with zero detections, zero quarantines, and zero repair
// traffic: the integrity layer is pure verification overhead when
// nothing is wrong.
func TestScrubCleanRunDetectsNothing(t *testing.T) {
	opts := SmokeScrubOptions()
	opts.CorruptProb = -1 // withDefaults treats 0 as "default"; negative disarms
	opts.ScrubCorruptProb = -1
	opts.TornWriteProb = -1
	res, err := RunScrub(11, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Errorf("%d requests failed on a clean system", res.Failed)
	}
	if res.Detected != 0 || res.Quarantines != 0 || res.Repairs != 0 {
		t.Errorf("clean run detected=%d quarantined=%d repaired=%d, want all zero",
			res.Detected, res.Quarantines, res.Repairs)
	}
	if len(res.DirtyAtEnd) != 0 || res.InQuarantine != 0 || !res.SeedsIntact {
		t.Errorf("clean run end audit: dirty=%v quarantine=%d seeds=%v",
			res.DirtyAtEnd, res.InQuarantine, res.SeedsIntact)
	}
}
