package workload

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/stats"
	"vmplants/internal/telemetry"
)

// The SLO experiment is the observability stack's own CI gate: a mixed
// warm/chaos burst whose every creation must yield exactly one rooted
// span tree crossing all three layers (shop, plant, clone/verify), a
// complete flight-recorder timeline, and SLOs that hold under the
// injected faults — all byte-identically reproducible per seed.

// SLOOptions tunes RunSLO.
type SLOOptions struct {
	Plants int // default 4
	// WarmBatch is the clean batched burst (default 16 requests).
	WarmBatch int
	// ChaosRequests are serial creations issued after the fault mix is
	// switched on (default 16).
	ChaosRequests int
	MemoryMB      int           // default 64
	BidTimeout    time.Duration // default 1 s virtual
	// Mix is the chaos-phase fault cocktail; only RPCDrop, SlowBid and
	// CloneIO are used — never PlantCrash, so every creation resolves
	// inside one Shop.Create via failover and the span-tree invariant
	// has no legitimate exception.
	Mix *ChaosMix
	// ClientRetries bounds re-submission of a request the shop failed
	// outright (default 4).
	ClientRetries int
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.Plants == 0 {
		o.Plants = 4
	}
	if o.WarmBatch == 0 {
		o.WarmBatch = 16
	}
	if o.ChaosRequests == 0 {
		o.ChaosRequests = 16
	}
	if o.MemoryMB == 0 {
		o.MemoryMB = 64
	}
	if o.BidTimeout == 0 {
		o.BidTimeout = time.Second
	}
	if o.Mix == nil {
		o.Mix = &ChaosMix{
			RPCDrop:      0.08,
			SlowBidProb:  0.08,
			SlowBidDelay: 3 * time.Second,
			CloneIO:      0.08,
		}
	}
	if o.ClientRetries == 0 {
		o.ClientRetries = 4
	}
	return o
}

// DefaultSLOObjectives declares the stack's standing objectives. The
// bounds are generous against the calibrated testbed on purpose: the
// gate is "the pipeline did not regress into pathology", not a tuning
// knob. Daemons install the same set.
func DefaultSLOObjectives() []telemetry.Objective {
	return []telemetry.Objective{
		{Name: "create.p99", Hist: "shop.create_secs", Quantile: 0.99, MaxSeconds: 300},
		{Name: "clone.p99", Hist: "plant.clone_secs", Quantile: 0.99, MaxSeconds: 120},
		{Name: "create.success", Good: "shop.creations", Bad: "shop.create_failures", MinRatio: 0.9},
	}
}

// SLOResult is one RunSLO outcome.
type SLOResult struct {
	Requests  int
	Succeeded int

	// Span-tree audit over every trace the run produced.
	Traces        int
	SpanCount     int
	OrphanSpans   int // spans whose parent is missing from their trace
	ExtraRoots    int // traces with more than one root span
	Incomplete    int // successful creations missing a layer's spans
	BadFlights    int // successful creations with an incomplete event timeline
	TracerDropped uint64
	FlightDropped uint64

	Objectives []telemetry.ObjectiveStatus
	SLOsHold   bool

	Injections map[string]int64
	CreateSecs stats.Summary

	// Spans is the full span set, for Chrome trace export.
	Spans []telemetry.Span

	// Fingerprint digests every virtual-time observable; same-seed runs
	// must produce identical fingerprints.
	Fingerprint string
}

// TreeOK reports the span-tree invariant: complete rings, zero orphans,
// one root per trace, all layers present for every success.
func (r *SLOResult) TreeOK() bool {
	return r.TracerDropped == 0 && r.FlightDropped == 0 &&
		r.OrphanSpans == 0 && r.ExtraRoots == 0 && r.Incomplete == 0 && r.BadFlights == 0
}

// requiredFlightKinds is the lifecycle every successful creation must
// have recorded.
var requiredFlightKinds = []string{
	telemetry.EvSubmitted, telemetry.EvBidWon, telemetry.EvAdmitted,
	telemetry.EvCloneStart, telemetry.EvCloneDone, telemetry.EvCreated,
}

// RunSLO drives the mixed warm/chaos burst and audits traces, flight
// timelines and objectives.
func RunSLO(seed int64, opts SLOOptions) (*SLOResult, error) {
	opts = opts.withDefaults()
	hub := telemetry.New()
	// The audit needs the complete span set: size the ring far above
	// what the burst can produce so nothing is evicted.
	hub.Tracer = telemetry.NewTracer(1 << 16)

	// The fault registry starts empty — the warm phase runs clean — and
	// gets the chaos mix's rules between phases.
	reg := fault.NewRegistry(seed + 104729)
	reg.SetTelemetry(hub)

	d, err := NewDeployment(Options{
		Plants:        opts.Plants,
		Seed:          seed,
		GoldenSizesMB: []int{opts.MemoryMB},
		Telemetry:     hub,
		PlantConfig:   plant.Config{Faults: reg},
	})
	if err != nil {
		return nil, err
	}
	d.Shop.BidTimeout = opts.BidTimeout
	for _, h := range d.Handles {
		h.Faults = reg
	}
	// Fresh-run guarantee: snapshots and SLO evaluations must never mix
	// samples from an earlier experiment sharing this registry.
	hub.M().ResetHistograms()
	hub.SLO = telemetry.NewSLOEngine(hub.M(), DefaultSLOObjectives()...)

	res := &SLOResult{Requests: opts.WarmBatch + opts.ChaosRequests}
	var lines []string // fingerprint material
	var createdIDs []core.VMID
	var secs []float64

	// Phase 1 — warm burst: a clean batch through the creation pipeline.
	specs := make([]*core.Spec, opts.WarmBatch)
	for i := range specs {
		specs[i], err = d.WorkspaceSpec(i+1, opts.MemoryMB)
		if err != nil {
			return nil, err
		}
	}
	err = d.Run(func(p *sim.Proc) {
		for i, r := range d.Shop.CreateMany(p, specs) {
			if r.Err != nil {
				lines = append(lines, fmt.Sprintf("warm %d FAILED %v", i+1, r.Err))
				continue
			}
			res.Succeeded++
			createdIDs = append(createdIDs, r.VMID)
			lines = append(lines, fmt.Sprintf("warm %d ok %s", i+1, r.VMID))
		}
	})
	if err != nil {
		return nil, err
	}

	// Phase 2 — chaos burst: transport and clone faults on, serial
	// creations. Every fault resolves inside one Shop.Create (failover,
	// re-bid), so each request still yields exactly one trace.
	mix := *opts.Mix
	reg.SetProb(fault.Wildcard, fault.RPCDrop, "", mix.RPCDrop)
	if mix.SlowBidProb > 0 {
		reg.SetProb(fault.Wildcard, fault.SlowBid, "", mix.SlowBidProb)
		reg.SetDelay(fault.Wildcard, fault.SlowBid, "", mix.SlowBidDelay)
	}
	reg.SetProb(fault.Wildcard, fault.CloneIO, "", mix.CloneIO)

	var runErr error
	err = d.Run(func(p *sim.Proc) {
		for i := 1; i <= opts.ChaosRequests; i++ {
			spec, err := d.WorkspaceSpec(opts.WarmBatch+i, opts.MemoryMB)
			if err != nil {
				runErr = err
				return
			}
			start := p.Now()
			var id core.VMID
			for try := 0; ; try++ {
				var cerr error
				id, _, cerr = d.Shop.Create(p, spec)
				if cerr == nil {
					break
				}
				if try >= opts.ClientRetries {
					lines = append(lines, fmt.Sprintf("chaos %d FAILED %v", i, cerr))
					id = ""
					break
				}
				p.Sleep(2 * time.Second)
			}
			if id == "" {
				continue
			}
			res.Succeeded++
			createdIDs = append(createdIDs, id)
			secs = append(secs, (p.Now() - start).Seconds())
			lines = append(lines, fmt.Sprintf("chaos %d ok %s route=%s", i, id, d.Shop.RouteOf(id)))
		}
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	res.CreateSecs = stats.Summarize(secs)

	// Audit 1 — span trees. Group every finished span by trace; each
	// group must have exactly one root and no span may reference a
	// parent outside its group.
	res.Spans = hub.T().Spans()
	res.SpanCount = len(res.Spans)
	res.TracerDropped = hub.T().Dropped()
	res.FlightDropped = hub.F().Dropped()
	byTrace := make(map[uint64][]telemetry.Span)
	for _, s := range res.Spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	res.Traces = len(byTrace)
	traceIDs := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		traceIDs = append(traceIDs, id)
	}
	sort.Slice(traceIDs, func(i, j int) bool { return traceIDs[i] < traceIDs[j] })
	for _, tid := range traceIDs {
		group := byTrace[tid]
		ids := make(map[uint64]bool, len(group))
		for _, s := range group {
			ids[s.ID] = true
		}
		roots, orphans := 0, 0
		names := make([]string, 0, len(group))
		for _, s := range group {
			names = append(names, s.Name)
			if s.Parent == 0 {
				roots++
			} else if !ids[s.Parent] {
				orphans++
			}
		}
		if roots > 1 {
			res.ExtraRoots++
		}
		res.OrphanSpans += orphans
		sort.Strings(names)
		lines = append(lines, fmt.Sprintf("trace %d roots=%d orphans=%d spans=[%s]",
			tid, roots, orphans, strings.Join(names, ",")))
	}

	// Audit 2 — layer coverage and flight timelines, per successful
	// creation: the trace must cross shop → plant → clone, and the
	// flight recorder must hold the full lifecycle starting at
	// submission.
	rootOf := make(map[string]uint64) // vmid → trace
	for _, s := range res.Spans {
		if s.Name == "shop.create" {
			rootOf[s.Attr("vmid")] = s.TraceID
		}
	}
	for _, id := range createdIDs {
		have := make(map[string]bool)
		for _, s := range byTrace[rootOf[string(id)]] {
			have[s.Name] = true
		}
		if !have["shop.create"] || !have["plant.create"] || !have["clone"] {
			res.Incomplete++
			lines = append(lines, fmt.Sprintf("incomplete trace for %s", id))
		}
		evs := hub.F().Events(string(id))
		kinds := make(map[string]bool, len(evs))
		var evLine []string
		for _, ev := range evs {
			kinds[ev.Kind] = true
			evLine = append(evLine, fmt.Sprintf("%s@%s", ev.Kind, ev.V))
		}
		ok := len(evs) > 0 && evs[0].Kind == telemetry.EvSubmitted
		for _, k := range requiredFlightKinds {
			ok = ok && kinds[k]
		}
		if !ok {
			res.BadFlights++
		}
		lines = append(lines, fmt.Sprintf("flight %s %s", id, strings.Join(evLine, " ")))
	}

	// Audit 3 — objectives, evaluated at the end of virtual time.
	res.Objectives = hub.SLO.Evaluate(d.Kernel.Now())
	res.SLOsHold = true
	for _, st := range res.Objectives {
		res.SLOsHold = res.SLOsHold && st.OK
		lines = append(lines, fmt.Sprintf("slo %s ok=%v value=%.6g bound=%g samples=%d burn=%.6g",
			st.Name, st.OK, st.Value, st.Bound, st.Samples, st.Burn))
	}

	res.Injections = reg.Counts()
	lines = append(lines, reg.Summary()...)
	lines = append(lines, fmt.Sprintf("traces=%d spans=%d orphans=%d extra_roots=%d incomplete=%d bad_flights=%d dropped=%d/%d end=%s",
		res.Traces, res.SpanCount, res.OrphanSpans, res.ExtraRoots, res.Incomplete,
		res.BadFlights, res.TracerDropped, res.FlightDropped, d.Kernel.Now()))
	res.Fingerprint = strings.Join(lines, "\n")
	return res, nil
}

// Report renders the run as printable lines.
func (r *SLOResult) Report() []string {
	out := []string{
		fmt.Sprintf("requests:          %d", r.Requests),
		fmt.Sprintf("succeeded:         %d (%.0f%%)", r.Succeeded, 100*float64(r.Succeeded)/float64(r.Requests)),
		fmt.Sprintf("traces:            %d (%d spans)", r.Traces, r.SpanCount),
		fmt.Sprintf("orphan spans:      %d", r.OrphanSpans),
		fmt.Sprintf("multi-root traces: %d", r.ExtraRoots),
		fmt.Sprintf("incomplete traces: %d", r.Incomplete),
		fmt.Sprintf("bad flight logs:   %d", r.BadFlights),
		fmt.Sprintf("ring drops:        spans=%d events=%d", r.TracerDropped, r.FlightDropped),
		fmt.Sprintf("chaos create secs: %s", r.CreateSecs),
	}
	for _, st := range r.Objectives {
		out = append(out, fmt.Sprintf("slo %-16s ok=%-5v value=%.4g bound=%g burn=%.3g (n=%d)",
			st.Name, st.OK, st.Value, st.Bound, st.Burn, st.Samples))
	}
	labels := make([]string, 0, len(r.Injections))
	for l := range r.Injections {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		out = append(out, fmt.Sprintf("injected %-28s %d", l, r.Injections[l]))
	}
	return out
}
