package workload

import "testing"

// The SLO run is the acceptance gate for the observability stack: every
// creation — batched, serial, faulted-over — must yield exactly one
// rooted span tree crossing shop, plant and clone layers, a complete
// flight-recorder timeline, and objectives that hold.
func TestSLORunSmoke(t *testing.T) {
	res, err := RunSLO(42, SLOOptions{WarmBatch: 8, ChaosRequests: 8})
	if err != nil {
		t.Fatalf("RunSLO: %v", err)
	}
	if res.Succeeded != res.Requests {
		t.Errorf("succeeded %d of %d requests", res.Succeeded, res.Requests)
	}
	if !res.TreeOK() {
		t.Errorf("span-tree invariant violated: orphans=%d extra_roots=%d incomplete=%d bad_flights=%d dropped=%d/%d",
			res.OrphanSpans, res.ExtraRoots, res.Incomplete, res.BadFlights,
			res.TracerDropped, res.FlightDropped)
	}
	if !res.SLOsHold {
		for _, st := range res.Objectives {
			if !st.OK {
				t.Errorf("objective %s violated: value=%v bound=%v", st.Name, st.Value, st.Bound)
			}
		}
	}
	if len(res.Objectives) != len(DefaultSLOObjectives()) {
		t.Errorf("%d objective statuses, want %d", len(res.Objectives), len(DefaultSLOObjectives()))
	}
	// The chaos phase must actually have injected something at the
	// default mix, or the gate proves nothing.
	total := int64(0)
	for _, n := range res.Injections {
		total += n
	}
	if total == 0 {
		t.Error("chaos phase injected no faults")
	}
}

func TestSLORunDeterministicAcrossRuns(t *testing.T) {
	opts := SLOOptions{WarmBatch: 4, ChaosRequests: 4}
	a, err := RunSLO(7, opts)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	b, err := RunSLO(7, opts)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatal("same-seed SLO runs diverged")
	}
}
