package workload

import (
	"fmt"
	"strings"

	"vmplants/internal/core"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
)

// warmSpec is WorkspaceSpec with the user-environment DAG: the Figure 3
// personalization plus the user's application stack (InVigoUserEnvDAG),
// so residual configuration dominates a cold creation and a derived
// checkpoint has something substantial to save.
func warmSpec(d *Deployment, seq, memMB int) (*core.Spec, error) {
	user := fmt.Sprintf("user%04d", seq)
	mac := fmt.Sprintf("00:50:56:%02x:%02x:%02x", (seq>>16)&0xff, (seq>>8)&0xff, seq&0xff)
	ip := fmt.Sprintf("10.1.%d.%d", (seq/250)%250, seq%250+1)
	g, err := InVigoUserEnvDAG(user, mac, ip)
	if err != nil {
		return nil, err
	}
	return &core.Spec{
		Name:     "workspace-" + user,
		Hardware: core.HardwareSpec{Arch: "x86", MemoryMB: memMB, DiskMB: d.Opts.GoldenDiskMB},
		Domain:   "ufl.edu",
		Backend:  d.Opts.Backend,
		Graph:    g,
	}, nil
}

// The warm experiment measures what the warehouse learning loop buys:
// a Zipf-skewed stream of workspace requests (popular users recur)
// replayed through a deployment with publish-back enabled. Early
// requests pay full residual configuration and checkpoint derived
// golden images back to the warehouse; later requests for the same
// configurations clone those checkpoints instead of reconfiguring, so
// mean creation time drops as the warehouse warms — within a byte
// budget that exercises utility-based retirement.

// WarmOptions tunes RunWarm.
type WarmOptions struct {
	// Plants is the cluster size (default 4).
	Plants int
	// MemoryMB is the workspace size (default 64).
	MemoryMB int
	// Requests is the stream length (default 48).
	Requests int
	// Users is the user-catalog size the Zipf draw ranges over
	// (default 12). Requests from the same user carry an identical
	// personalization DAG, so repeats can match a derived image fully.
	Users int
	// ZipfS is the skew exponent (default 1.2).
	ZipfS float64
	// DerivedBudgetMB is the warehouse byte budget beyond the seed
	// images, i.e. room for derived checkpoints (default 600 — eight
	// 64 MB-class checkpoints for a twelve-user catalog, so the tail
	// users' images churn through utility-based retirement while the
	// popular users' stay resident).
	DerivedBudgetMB int
	// Threshold is the publish-back residual threshold (default:
	// the plant's own default).
	Threshold int
}

func (o WarmOptions) withDefaults() WarmOptions {
	if o.Plants == 0 {
		o.Plants = 4
	}
	if o.MemoryMB == 0 {
		o.MemoryMB = 64
	}
	if o.Requests == 0 {
		o.Requests = 48
	}
	if o.Users == 0 {
		o.Users = 12
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.2
	}
	if o.DerivedBudgetMB == 0 {
		o.DerivedBudgetMB = 600
	}
	return o
}

// SmokeWarmOptions is the scaled-down CI variant.
func SmokeWarmOptions() WarmOptions {
	return WarmOptions{Plants: 2, Requests: 24, Users: 8, DerivedBudgetMB: 375}
}

// WarmRecord is one request's outcome in the stream.
type WarmRecord struct {
	Seq        int
	User       int // 0-based Zipf rank
	OK         bool
	CreateSecs float64
	Golden     string // image the creation cloned
	MatchedOps int
}

// WarmResult is the full learning-loop measurement.
type WarmResult struct {
	Requests int
	Users    int
	Records  []WarmRecord

	ColdMean    float64 // mean creation secs, first half of the stream
	WarmMean    float64 // mean creation secs, second half
	Improvement float64 // 1 - WarmMean/ColdMean

	PublishBacks  int64 // plant.publish_backs
	DerivedImages int   // derived images still published at the end
	Retirements   int64 // derived images evicted by capacity pressure
	BytesUsed     int64
	Capacity      int64
	SeedsIntact   bool // every installer-seeded image survived
	Failed        int

	// Extent dedup: the content-addressed store's end-of-run footprint.
	// SavedBytes is logical minus physical — what sharing byte-identical
	// extents across seed and derived publications kept off the volume.
	ExtentLogicalBytes  int64
	ExtentPhysicalBytes int64
	ExtentSavedBytes    int64

	// Fingerprint digests every observable of the run; equal
	// fingerprints across same-seed reruns mean the loop (including
	// its off-critical-path publish processes) is deterministic.
	Fingerprint string
}

// Report renders the result as printable lines.
func (r *WarmResult) Report() []string {
	return []string{
		fmt.Sprintf("requests: %d over %d users (Zipf), %d failed", r.Requests, r.Users, r.Failed),
		fmt.Sprintf("cold-half mean creation: %6.1f s", r.ColdMean),
		fmt.Sprintf("warm-half mean creation: %6.1f s", r.WarmMean),
		fmt.Sprintf("improvement:             %6.1f %%", 100*r.Improvement),
		fmt.Sprintf("publish-backs: %d, derived images: %d, retirements: %d",
			r.PublishBacks, r.DerivedImages, r.Retirements),
		fmt.Sprintf("warehouse bytes: %d of %d budget (seeds intact: %v)",
			r.BytesUsed, r.Capacity, r.SeedsIntact),
		fmt.Sprintf("extent store: %d MB logical → %d MB physical (%d MB deduplicated)",
			r.ExtentLogicalBytes>>20, r.ExtentPhysicalBytes>>20, r.ExtentSavedBytes>>20),
	}
}

// RunWarm replays the Zipf stream through a fresh deployment with
// publish-back enabled and a capacity budget sized to force
// retirements. Each workspace is destroyed right after creation — the
// In-VIGO session ends — so derived images are unreferenced between
// requests and retirement always has candidates.
func RunWarm(seed int64, opts WarmOptions) (*WarmResult, error) {
	opts = opts.withDefaults()
	hub := telemetry.New()
	d, err := NewDeployment(Options{
		Plants:        opts.Plants,
		Seed:          seed,
		GoldenSizesMB: []int{opts.MemoryMB},
		Telemetry:     hub,
		PlantConfig: plant.Config{
			PublishBack:          true,
			PublishBackThreshold: opts.Threshold,
		},
	})
	if err != nil {
		return nil, err
	}
	seeds := d.Warehouse.List()
	capacity := d.Warehouse.BytesUsed() + int64(opts.DerivedBudgetMB)<<20
	d.Warehouse.SetCapacity(capacity)

	// The user stream is drawn up front from a private generator, so
	// the request sequence depends only on the seed. Every user's first
	// login lands in the cold half — the catalog sweep — and the
	// steady-state tail is a Zipf draw over the same catalog, so the
	// warm half measures what the now-populated warehouse buys.
	rng := sim.NewRNG(seed*31 + 7)
	users := make([]int, opts.Requests)
	sweep := opts.Users
	if sweep > opts.Requests/2 {
		sweep = opts.Requests / 2
	}
	for i := 0; i < sweep; i++ {
		users[i] = i
	}
	for i := sweep; i < opts.Requests; i++ {
		users[i] = rng.Zipf(opts.Users, opts.ZipfS)
	}

	res := &WarmResult{Requests: opts.Requests, Users: opts.Users, Capacity: capacity}
	var buildErr error
	err = d.Run(func(p *sim.Proc) {
		for i, user := range users {
			// Same user ⇒ same personalization DAG, so a repeat can
			// fully match that user's derived checkpoint.
			spec, err := warmSpec(d, user+1, opts.MemoryMB)
			if err != nil {
				buildErr = err
				return
			}
			start := p.Now()
			id, ad, err := d.Shop.Create(p, spec)
			rec := WarmRecord{Seq: i + 1, User: user, CreateSecs: (p.Now() - start).Seconds()}
			if err == nil {
				rec.OK = true
				rec.Golden = ad.GetString(core.AttrGoldenImage, "")
				rec.MatchedOps = int(ad.GetInt(core.AttrMatchedOps, 0))
				// The workspace session ends: collect the VM so the
				// images it referenced become retirable again.
				if derr := d.Shop.Destroy(p, id); derr != nil {
					buildErr = derr
					return
				}
			}
			res.Records = append(res.Records, rec)
		}
	})
	if err != nil {
		return nil, err
	}
	if buildErr != nil {
		return nil, buildErr
	}

	half := len(res.Records) / 2
	res.ColdMean = meanCreateSecs(res.Records[:half])
	res.WarmMean = meanCreateSecs(res.Records[half:])
	if res.ColdMean > 0 {
		res.Improvement = 1 - res.WarmMean/res.ColdMean
	}
	for _, r := range res.Records {
		if !r.OK {
			res.Failed++
		}
	}
	res.PublishBacks = hub.Counter("plant.publish_backs").Value()
	res.DerivedImages = d.Warehouse.DerivedCount()
	res.Retirements = d.Warehouse.Retirements()
	res.BytesUsed = d.Warehouse.BytesUsed()
	ext := d.Warehouse.ExtentStatsNow()
	res.ExtentLogicalBytes = ext.LogicalBytes
	res.ExtentPhysicalBytes = ext.PhysicalBytes
	res.ExtentSavedBytes = ext.SavedBytes()
	res.SeedsIntact = true
	for _, s := range seeds {
		if _, ok := d.Warehouse.Lookup(s); !ok {
			res.SeedsIntact = false
		}
	}

	var lines []string
	for _, r := range res.Records {
		lines = append(lines, fmt.Sprintf("req=%d user=%d ok=%v secs=%.6f golden=%s matched=%d",
			r.Seq, r.User, r.OK, r.CreateSecs, r.Golden, r.MatchedOps))
	}
	lines = append(lines, fmt.Sprintf("end images=[%s] bytes=%d retirements=%d publishes=%d",
		strings.Join(d.Warehouse.List(), " "), res.BytesUsed, res.Retirements, res.PublishBacks))
	res.Fingerprint = strings.Join(lines, "\n")
	return res, nil
}

func meanCreateSecs(recs []WarmRecord) float64 {
	var sum float64
	n := 0
	for _, r := range recs {
		if r.OK {
			sum += r.CreateSecs
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
