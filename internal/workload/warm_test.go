package workload

import (
	"fmt"
	"strings"
	"testing"

	"vmplants/internal/core"
	"vmplants/internal/plant"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
)

// The warm run is the acceptance gate for the learning loop: the warm
// half of the stream must create VMs at least 30% faster than the cold
// half, within the byte budget, retiring only unreferenced derived
// images and never a seed.
func TestWarmRunSmoke(t *testing.T) {
	res, err := RunWarm(42, SmokeWarmOptions())
	if err != nil {
		t.Fatalf("RunWarm: %v", err)
	}
	if res.Failed != 0 {
		t.Errorf("%d requests failed", res.Failed)
	}
	if res.Improvement < 0.30 {
		t.Errorf("improvement = %.1f%%, want >= 30%%", 100*res.Improvement)
	}
	if res.PublishBacks == 0 || res.DerivedImages == 0 {
		t.Errorf("publish-backs = %d, derived images = %d", res.PublishBacks, res.DerivedImages)
	}
	if res.Retirements == 0 {
		t.Error("capacity pressure retired nothing")
	}
	if res.BytesUsed > res.Capacity {
		t.Errorf("bytes used %d exceed the %d budget", res.BytesUsed, res.Capacity)
	}
	if !res.SeedsIntact {
		t.Error("a seed image was evicted")
	}
}

func TestWarmRunDeterministicAcrossRuns(t *testing.T) {
	opts := SmokeWarmOptions()
	a, err := RunWarm(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWarm(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("same-seed warm runs diverged:\n--- first ---\n%s\n--- second ---\n%s",
			a.Fingerprint, b.Fingerprint)
	}
}

// concurrentPublishFingerprint drives one batched CreateMany of
// duplicate-user requests against a single warehouse with publish-back
// enabled, and digests every observable: per-request outcome, the
// warehouse's image list, and each image's reference count. Duplicate
// users make concurrent creations race to publish the same derived
// name; the loser's checkpoint must be dropped, not double-registered.
func concurrentPublishFingerprint(t *testing.T, seed int64) string {
	t.Helper()
	d, err := NewDeployment(Options{
		Plants:        4,
		Seed:          seed,
		GoldenSizesMB: []int{64},
		PlantConfig:   plant.Config{PublishBack: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Warehouse.SetCapacity(d.Warehouse.BytesUsed() + 500<<20)

	// Twelve requests over three users: every user's DAG is requested
	// concurrently several times.
	var specs []*core.Spec
	for i := 0; i < 12; i++ {
		spec, err := warmSpec(d, i%3+1, 64)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	var results []shop.BatchResult
	err = d.Run(func(p *sim.Proc) {
		results = d.Shop.CreateMany(p, specs)
		// Let the off-critical-path publish uploads drain, then end
		// every session so the images' reference counts settle.
		p.Sleep(sim.Seconds(60))
		for _, r := range results {
			if r.Err == nil {
				if derr := d.Shop.Destroy(p, r.VMID); derr != nil {
					t.Errorf("destroy %s: %v", r.VMID, derr)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	var lines []string
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("request %d failed: %v", i, r.Err)
			continue
		}
		lines = append(lines, fmt.Sprintf("req=%d golden=%s matched=%d",
			i, r.Ad.GetString(core.AttrGoldenImage, ""), r.Ad.GetInt(core.AttrMatchedOps, 0)))
	}
	derived := 0
	for _, n := range d.Warehouse.List() {
		im, _ := d.Warehouse.Lookup(n)
		lines = append(lines, fmt.Sprintf("image=%s derived=%v refs=%d uses=%d",
			n, im.Derived, im.Refs(), im.Uses()))
		if im.Derived {
			derived++
			if im.Refs() != 0 {
				t.Errorf("derived image %s still referenced after all sessions ended: %d", n, im.Refs())
			}
		}
	}
	// Three distinct DAGs, one derived image each — the publish races
	// must collapse onto one registration per fingerprint.
	if derived != 3 {
		t.Errorf("%d derived images, want 3 (one per distinct user DAG)", derived)
	}
	return strings.Join(lines, "\n")
}

// Run under -race in CI: concurrent creations with publish-back share
// Image.refs and the clone cache through the kernel's serialization,
// and same-seed runs must stay byte-identical.
func TestConcurrentPublishBackDeterministic(t *testing.T) {
	a := concurrentPublishFingerprint(t, 21)
	b := concurrentPublishFingerprint(t, 21)
	if a != b {
		t.Errorf("same-seed concurrent publish-back runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
