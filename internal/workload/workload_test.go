package workload

import (
	"fmt"
	"testing"

	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/match"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/stats"
)

func TestInVigoDAGMatchesFigure3(t *testing.T) {
	g, err := InVigoDAG("arijit", "00:50:56:00:00:01", "10.1.0.7")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 9 {
		t.Errorf("nodes = %d, want 9 (A..I)", g.Len())
	}
	// The golden history matches as the A,B,C prefix, residual D E F G I H.
	r := match.Evaluate(g, InVigoGoldenHistory())
	if !r.OK || len(r.Matched) != 3 {
		t.Fatalf("golden history match: %+v", r)
	}
	want := []string{"D", "E", "F", "G", "I", "H"}
	for i, id := range want {
		if r.Residual[i] != id {
			t.Fatalf("residual = %v, want %v", r.Residual, want)
		}
	}
	// G (configure VNC) must precede H (start VNC); I is unordered wrt both.
	if !g.Before("G", "H") || g.Before("I", "H") || g.Before("H", "I") {
		t.Error("Figure 3 ordering constraints wrong")
	}
}

func TestGenericDAGIsGoldenExactCover(t *testing.T) {
	g, err := GenericDAG()
	if err != nil {
		t.Fatal(err)
	}
	r := match.TemplateEvaluate(g, InVigoGoldenHistory())
	if !r.OK || len(r.Residual) != 0 {
		t.Errorf("generic DAG template result: %+v", r)
	}
}

func TestDeploymentDefaults(t *testing.T) {
	d, err := NewDeployment(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Plants) != 8 {
		t.Errorf("%d plants", len(d.Plants))
	}
	if got := d.Warehouse.List(); len(got) != 3 {
		t.Errorf("goldens = %v", got)
	}
	if _, ok := d.Warehouse.Lookup(GoldenName(64, "vmware")); !ok {
		t.Error("64MB golden missing")
	}
}

func TestCreationSeriesSmoke(t *testing.T) {
	d, err := NewDeployment(Options{Seed: 2, GoldenSizesMB: []int{64}})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := d.RunCreationSeries(10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || Succeeded(recs) != 10 {
		t.Fatalf("records: %d, ok: %d", len(recs), Succeeded(recs))
	}
	sum := stats.Summarize(CreateTimes(recs))
	// The paper's envelope: creations in 17–85 s.
	if sum.Min < 10 || sum.Max > 100 {
		t.Errorf("creation times out of envelope: %s", sum)
	}
	// Memory-based bidding spreads VMs across plants.
	plants := map[string]bool{}
	for _, r := range recs {
		plants[r.Plant] = true
	}
	if len(plants) < 4 {
		t.Errorf("only %d plants used", len(plants))
	}
}

func TestCreationSeriesDeterministic(t *testing.T) {
	run := func() []CreationRecord {
		d, err := NewDeployment(Options{Seed: 3, GoldenSizesMB: []int{32}})
		if err != nil {
			t.Fatal(err)
		}
		recs, err := d.RunCreationSeries(6, 32)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFailureInjectionSurfacesToClient(t *testing.T) {
	d, err := NewDeployment(Options{
		Seed:          4,
		GoldenSizesMB: []int{32},
		PlantConfig:   plant.Config{FailProb: map[string]float64{"configure-network": 1.0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := d.RunCreationSeries(3, 32)
	if err != nil {
		t.Fatal(err)
	}
	if Succeeded(recs) != 0 {
		t.Errorf("%d succeeded with certain failure", Succeeded(recs))
	}
	for _, r := range recs {
		if r.Err == "" {
			t.Error("failed record without error text")
		}
	}
}

func TestSmokeCreationExperimentShapes(t *testing.T) {
	exp, err := RunCreationExperiment(11, SmokeSeries())
	if err != nil {
		t.Fatal(err)
	}
	// Ordering of means by memory size (Figure 4's second observation).
	sums := exp.SummaryBySize()
	if !(sums[32].Mean < sums[64].Mean && sums[64].Mean < sums[256].Mean) {
		t.Errorf("means not ordered: 32=%v 64=%v 256=%v", sums[32].Mean, sums[64].Mean, sums[256].Mean)
	}
	// Histograms have mass and normalized frequencies.
	f4, order := exp.Figure4()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for _, label := range order {
		if f4[label].N() == 0 {
			t.Errorf("figure-4 histogram %s empty", label)
		}
	}
	f5, _ := exp.Figure5()
	if f5["32 MB"].N() == 0 {
		t.Error("figure-5 empty")
	}
	// Figure 6 series exist and are per-sequence.
	f6 := exp.Figure6()
	if len(f6) != 3 || f6[0].Len() == 0 {
		t.Errorf("figure-6 series: %d", len(f6))
	}
}

func TestCostCrossoverAtThirteen(t *testing.T) {
	res, err := RunCostCrossover(5, 14)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crossover != 14 {
		t.Errorf("crossover at request %d, want 14 (13 VMs on the first plant)", res.Crossover)
	}
	first := res.Assignments[0]
	for i := 0; i < 13; i++ {
		if res.Assignments[i] != first {
			t.Errorf("request %d on %s, want %s", i+1, res.Assignments[i], first)
		}
	}
}

func TestUMLCloneAverageNear76s(t *testing.T) {
	res, err := RunUML(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CloneSummary.Mean; got < 65 || got > 90 {
		t.Errorf("UML mean clone = %.1fs, want ≈76s", got)
	}
}

func TestCopyBaselineFactor(t *testing.T) {
	res, err := RunCopyBaseline(7)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 2 GB full copy ≈ 210 s, "around 4 times slower than the
	// average cloning time of the 256MB VM".
	if res.FullCopySecs < 180 || res.FullCopySecs > 240 {
		t.Errorf("full copy = %.1fs, want ≈210s", res.FullCopySecs)
	}
	if res.SlowdownFactor < 2.5 || res.SlowdownFactor > 6.5 {
		t.Errorf("slowdown factor = %.2f, want ≈4", res.SlowdownFactor)
	}
}

func TestAblationNoPartialMatch(t *testing.T) {
	res, err := RunAblationNoPartialMatch(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Full OS install (~20 min) vs tens of seconds: a huge factor.
	if res.Factor < 10 {
		t.Errorf("no-partial-match factor = %.1f, want ≫10", res.Factor)
	}
	if res.VariantOK != 3 || res.BaselineOK != 3 {
		t.Errorf("ok counts: base %d, variant %d", res.BaselineOK, res.VariantOK)
	}
}

func TestAblationCopyClone(t *testing.T) {
	res, err := RunAblationCopyClone(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Factor < 3 {
		t.Errorf("copy-clone factor = %.1f, want > 3", res.Factor)
	}
}

func TestTemplateVsDAG(t *testing.T) {
	res, err := RunTemplateVsDAG(10, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Template: only the generic half hits; DAG: everything hits.
	if res.TemplateHits != 3 {
		t.Errorf("template hits = %d, want 3", res.TemplateHits)
	}
	if res.DAGHits != 6 {
		t.Errorf("DAG hits = %d, want 6", res.DAGHits)
	}
	// Template misses pay the OS install: much slower on average.
	if !(res.TemplateSummary.Mean > 3*res.DAGSummary.Mean) {
		t.Errorf("template mean %.1fs vs DAG mean %.1fs", res.TemplateSummary.Mean, res.DAGSummary.Mean)
	}
}

func TestWorkspaceSpecValid(t *testing.T) {
	d, err := NewDeployment(Options{Seed: 1, GoldenSizesMB: []int{64}})
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []int{1, 250, 62500} {
		s, err := d.WorkspaceSpec(seq, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("seq %d: %v", seq, err)
		}
	}
}

func TestDeploymentRunReportsStranded(t *testing.T) {
	d, err := NewDeployment(Options{Seed: 1, GoldenSizesMB: []int{32}, Plants: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(func(p *sim.Proc) { p.Wait(-1) }); err == nil {
		t.Error("stranded process not reported")
	}
}

func TestVMIDsRoundTripCore(t *testing.T) {
	d, _ := NewDeployment(Options{Seed: 1, GoldenSizesMB: []int{32}, Plants: 1})
	recs, err := d.RunCreationSeries(1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.ParseVMID(string(recs[0].VMID)); err != nil {
		t.Errorf("minted VMID invalid: %v", err)
	}
}

func TestGoldenHistoryIsLinearExtensionOfDAG(t *testing.T) {
	g, _ := InVigoDAG("u", "m", "10.0.0.1")
	ids := []string{"A", "B", "C"}
	if !g.IsLinearExtension(ids) {
		t.Error("golden history order violates the DAG")
	}
}

func TestPrecreationHidesLatency(t *testing.T) {
	res, err := RunPrecreation(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 5 {
		t.Errorf("pool hits = %d, want 5", res.Hits)
	}
	// Pre-creation removes the NFS state copy from the critical path;
	// resume, configuration and protocol remain, so the end-to-end gain
	// is a solid fraction, not an order of magnitude.
	if res.Speedup < 1.15 {
		t.Errorf("speedup = %.2f, want visible latency hiding", res.Speedup)
	}
}

func TestMigrationFasterThanRecreation(t *testing.T) {
	res, err := RunMigration(13, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MigrateSecs.Mean <= 0 {
		t.Fatal("no migration time recorded")
	}
	if res.Speedup < 1.2 {
		t.Errorf("migration speedup = %.2f (migrate %.1fs vs recreate %.1fs)",
			res.Speedup, res.MigrateSecs.Mean, res.RecreateSecs.Mean)
	}
}

func TestUMLCheckpointResumeSkipsBoot(t *testing.T) {
	// The SBUML study the paper left open: UML clones resumed from
	// checkpoints avoid the ≈76 s boot entirely, so the gain is far
	// larger than for the VMware line.
	res, err := RunPrecreationBackend(14, 4, "uml")
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 4 {
		t.Errorf("pool hits = %d", res.Hits)
	}
	if res.Speedup < 2.5 {
		t.Errorf("UML checkpoint speedup = %.2f (cold %.1fs, warm %.1fs), want ≫2×",
			res.Speedup, res.ColdSummary.Mean, res.WarmSummary.Mean)
	}
}

// Property: any topological prefix of any random DAG passes all three
// matching tests, and matched+residual partition the action set.
func TestRandomDAGTopoPrefixAlwaysMatches(t *testing.T) {
	rng := sim.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		g, err := RandomDAG(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		k := rng.Intn(g.Len() + 1)
		perf, err := TopoPrefixActions(g, k)
		if err != nil {
			t.Fatal(err)
		}
		r := match.Evaluate(g, perf)
		if !r.OK {
			t.Fatalf("trial %d: prefix of %d rejected: %s (%s)", trial, k, r.Failed, r.Reason)
		}
		if len(r.Matched)+len(r.Residual) != g.Len() {
			t.Fatalf("trial %d: %d matched + %d residual ≠ %d nodes",
				trial, len(r.Matched), len(r.Residual), g.Len())
		}
		// Shuffling the prefix out of order must never crash, and if it
		// violates the partial order the matcher says so.
		if k >= 2 {
			perm := rng.Perm(k)
			shuffled := make([]dagActionAlias, 0, k)
			_ = shuffled
			sh := make([]dag.Action, k)
			for i, j := range perm {
				sh[i] = perf[j]
			}
			r2 := match.Evaluate(g, sh)
			if r2.OK && !g.IsLinearExtension(r2.Matched) {
				t.Fatalf("trial %d: matcher accepted a non-linear-extension history", trial)
			}
		}
	}
}

type dagActionAlias = dag.Action

// Concurrent clients: the paper's runs are sequential, but the system
// must stay correct when several clients create at once — the NFS
// server's stream slots serialize the copies, so everything succeeds,
// just slower per request.
func TestConcurrentClientsAllSucceed(t *testing.T) {
	d, err := NewDeployment(Options{Seed: 31, GoldenSizesMB: []int{64}, Plants: 4})
	if err != nil {
		t.Fatal(err)
	}
	const clients, each = 4, 3
	results := make([][]CreationRecord, clients)
	for c := 0; c < clients; c++ {
		c := c
		d.Kernel.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			for i := 0; i < each; i++ {
				spec, err := d.WorkspaceSpec(c*100+i, 64)
				if err != nil {
					p.Failf("%v", err)
				}
				spec.Domain = fmt.Sprintf("domain%d.edu", c)
				start := p.Now()
				_, ad, err := d.Shop.Create(p, spec)
				rec := CreationRecord{Seq: i, CreateSecs: (p.Now() - start).Seconds()}
				if err == nil {
					rec.OK = true
					rec.Plant = ad.GetString(core.AttrPlant, "")
				} else {
					rec.Err = err.Error()
				}
				results[c] = append(results[c], rec)
			}
		})
	}
	res := d.Kernel.Run(0)
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
	for c, recs := range results {
		if Succeeded(recs) != each {
			t.Errorf("client %d: %d/%d succeeded: %+v", c, Succeeded(recs), each, recs)
		}
	}
}

// Chaos: a plant dies mid-series; the shop routes around it and the
// series keeps succeeding.
func TestPlantDeathMidSeries(t *testing.T) {
	d, err := NewDeployment(Options{Seed: 32, GoldenSizesMB: []int{64}, Plants: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ok, failed int
	err = d.Run(func(p *sim.Proc) {
		for i := 1; i <= 9; i++ {
			if i == 4 {
				d.Handles[0].Down = true // kill one plant
			}
			spec, err := d.WorkspaceSpec(i, 64)
			if err != nil {
				p.Failf("%v", err)
			}
			if _, _, err := d.Shop.Create(p, spec); err != nil {
				failed++
			} else {
				ok++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok != 9 {
		t.Errorf("%d/9 creations survived a plant death (failed %d)", ok, failed)
	}
	// VMs on the dead plant are unreachable, but the shop still serves
	// queries for VMs on live plants.
}

func TestParkingFreesMemoryAndResumesFast(t *testing.T) {
	res, err := RunParking(15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommittedParked != 0 {
		t.Errorf("parked workspaces still commit %d MB", res.CommittedParked)
	}
	if res.CommittedBefore <= 0 {
		t.Error("no memory committed while running")
	}
	// Resume is much cheaper than re-creating the workspace.
	if !(res.ResumeSecs.Mean < res.CreateSecs.Mean/2) {
		t.Errorf("resume %.1fs vs create %.1fs", res.ResumeSecs.Mean, res.CreateSecs.Mean)
	}
}

func TestAnatomyStagesSumSensibly(t *testing.T) {
	res, err := RunAnatomy(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 8 {
		t.Errorf("N = %d", res.N)
	}
	sum := res.CopySecs.Mean + res.ResumeSecs.Mean + res.ConfigSecs.Mean
	if !(sum <= res.TotalSecs.Mean+1) {
		t.Errorf("stages %.1f exceed total %.1f", sum, res.TotalSecs.Mean)
	}
	if !(res.TotalSecs.Mean < res.ClientSecs.Mean) {
		t.Errorf("plant total %.1f ≥ client %.1f", res.TotalSecs.Mean, res.ClientSecs.Mean)
	}
}
