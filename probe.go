package vmplants

import "vmplants/internal/simnet"

// probeFrame builds the Ethernet-layer echo request GuestProbe sends.
func probeFrame(dst simnet.MAC) simnet.Frame {
	return simnet.Frame{
		Src:       simnet.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		Dst:       dst,
		EtherType: simnet.EtherTypeTest,
		Payload:   []byte("probe"),
	}
}
