#!/bin/sh
# check.sh — the full pre-merge gate: build, vet, lint, then the test
# suite under the race detector. The telemetry subsystem serves debug
# HTTP endpoints concurrently with kernel runs, so -race is part of the
# bar.
#
# Knobs (all off by default):
#   CI_QUIET=1        suppress command echoing (CI logs stay readable)
#   CHECK_SHORT=1     skip the experiment smokes; tests-only gate
#   CHECK_EXP=<name>  build, then run only that one experiment smoke —
#                     the CI matrix fans out one job per experiment
#                     this way, while this script stays the single
#                     local entry point
#   CHECK_ARTIFACTS=<dir>  have smokes that support it dump their
#                     journals / Chrome traces there (CI uploads the
#                     directory when a matrix job fails)
set -eu
[ "${CI_QUIET:-0}" = "1" ] || set -x

cd "$(dirname "$0")/.."

# smoke runs one experiment gate; failure artifacts land in
# CHECK_ARTIFACTS for the experiments that can dump them.
smoke() {
    exp="$1"
    set -- -exp "$exp" -series smoke
    if [ -n "${CHECK_ARTIFACTS:-}" ]; then
        mkdir -p "$CHECK_ARTIFACTS"
        case "$exp" in
        federation) set -- "$@" -artifacts "$CHECK_ARTIFACTS" ;;
        pipeline) set -- "$@" -artifacts "$CHECK_ARTIFACTS" ;;
        diurnal) set -- "$@" -artifacts "$CHECK_ARTIFACTS" ;;
        slo) set -- "$@" -trace "$CHECK_ARTIFACTS/slo-trace.json" ;;
        esac
    fi
    go run ./cmd/vmbench "$@" >/dev/null
}

if [ -n "${CHECK_EXP:-}" ]; then
    # Matrix mode: one experiment smoke per invocation. The toolchain
    # gate (vet, lint, race tests) runs once in its own job, not seven
    # times over.
    go build ./...
    smoke "$CHECK_EXP"
    exit 0
fi

go build ./...
go vet ./...

# staticcheck is part of the gate when available (CI installs the
# pinned version; see `make lint`). Local runs without it still pass,
# loudly, so offline development keeps working.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "check.sh: staticcheck not installed, skipping lint (see 'make lint')" >&2
fi

go test -race ./...

if [ "${CHECK_SHORT:-0}" != "1" ]; then
    # Failure-recovery smoke: deterministic chaos run that must complete
    # every request via failover/retry with zero orphans or leaks.
    smoke chaos
    # Batched-creation smoke: batch-16 must beat batch-1 by >= 3x while a
    # single request stays byte-identical to the serial path; the lazy
    # clone comparison must resume >= 2x below the full-copy floor with
    # byte-identical converged end states.
    smoke pipeline
    # Learning-loop smoke: publish-back must cut warm-half creation time
    # >= 30% within the byte budget, retiring only unreferenced derived
    # images, with same-seed reruns byte-identical.
    smoke warm
    # Data-integrity smoke: under injected corruption every creation
    # must resume from verified state, every detection must quarantine
    # and heal (or retire), seeds stay intact, the end audit is clean,
    # and same-seed reruns are byte-identical.
    smoke scrub
    # Observability smoke: every creation must yield one rooted span
    # tree crossing all three layers with a complete flight timeline,
    # SLOs must hold, and same-seed reruns are byte-identical.
    smoke slo
    # Crash-restart smoke: daemons killed at the write-ahead protocol's
    # worst instants must still yield exactly-once creations, a
    # journal-rebuilt route table, and a quarantine set that survives
    # the warehouse restart, byte-identically across same-seed reruns.
    smoke restart
    # Federation smoke: 3 shops of 6 plants must beat 1 shop of 6 by
    # >= 2.5x goodput on the same skewed stream, keep cross-cell
    # forwards exactly-once through a mid-run shop kill, gossip a
    # derived image clone-warm into another cell, and replay
    # byte-identically on the same seed.
    smoke federation
    # Elastic-fleet smoke: a compressed day/night cycle with flash
    # crowds and maintenance windows (one crossing a kill -9 mid-drain)
    # must hold its SLOs, scale up and drain/retire at least twice
    # each, shed only retryably, orphan and leak nothing, and replay
    # byte-identically on the same seed.
    smoke diurnal
fi
