#!/bin/sh
# check.sh — the full pre-merge gate: build, vet, then the test suite
# under the race detector. The telemetry subsystem serves debug HTTP
# endpoints concurrently with kernel runs, so -race is part of the bar.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Failure-recovery smoke: deterministic chaos run that must complete
# every request via failover/retry with zero orphans or leaks.
go run ./cmd/vmbench -exp chaos -series smoke >/dev/null
