#!/bin/sh
# check.sh — the full pre-merge gate: build, vet, lint, then the test
# suite under the race detector. The telemetry subsystem serves debug
# HTTP endpoints concurrently with kernel runs, so -race is part of the
# bar.
#
# Knobs (all off by default):
#   CI_QUIET=1    suppress command echoing (CI logs stay readable)
#   CHECK_SHORT=1 skip the experiment smokes; tests-only gate
set -eu
[ "${CI_QUIET:-0}" = "1" ] || set -x

cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# staticcheck is part of the gate when available (CI installs the
# pinned version; see `make lint`). Local runs without it still pass,
# loudly, so offline development keeps working.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "check.sh: staticcheck not installed, skipping lint (see 'make lint')" >&2
fi

go test -race ./...

if [ "${CHECK_SHORT:-0}" != "1" ]; then
    # Failure-recovery smoke: deterministic chaos run that must complete
    # every request via failover/retry with zero orphans or leaks.
    go run ./cmd/vmbench -exp chaos -series smoke >/dev/null
    # Batched-creation smoke: batch-16 must beat batch-1 by >= 3x while a
    # single request stays byte-identical to the serial path.
    go run ./cmd/vmbench -exp pipeline -series smoke >/dev/null
    # Learning-loop smoke: publish-back must cut warm-half creation time
    # >= 30% within the byte budget, retiring only unreferenced derived
    # images, with same-seed reruns byte-identical.
    go run ./cmd/vmbench -exp warm -series smoke >/dev/null
    # Data-integrity smoke: under injected corruption every creation
    # must resume from verified state, every detection must quarantine
    # and heal (or retire), seeds stay intact, the end audit is clean,
    # and same-seed reruns are byte-identical.
    go run ./cmd/vmbench -exp scrub -series smoke >/dev/null
    # Observability smoke: every creation must yield one rooted span
    # tree crossing all three layers with a complete flight timeline,
    # SLOs must hold, and same-seed reruns are byte-identical.
    go run ./cmd/vmbench -exp slo -series smoke >/dev/null
    # Crash-restart smoke: daemons killed at the write-ahead protocol's
    # worst instants must still yield exactly-once creations, a
    # journal-rebuilt route table, and a quarantine set that survives
    # the warehouse restart, byte-identically across same-seed reruns.
    go run ./cmd/vmbench -exp restart -series smoke >/dev/null
fi
