// Package vmplants is a from-scratch Go implementation of the VMPlants
// middleware (Krsul et al., "VMPlants: Providing and Managing Virtual
// Machine Execution Environments for Grid Computing", SC 2004): a
// service-oriented architecture in which a front-end VMShop takes
// XML-described virtual-machine creation requests — hardware constraints
// plus a configuration DAG — collects cost bids from VMPlants deployed
// on cluster nodes, and has the winning plant instantiate the VM by
// partially matching the DAG against cached "golden" images, cloning the
// best match via copy-on-write links, and executing the residual
// configuration actions through an in-guest agent.
//
// The physical substrate (cluster nodes, NFS storage, hosted VMMs) is a
// deterministic discrete-event simulation calibrated to the paper's
// testbed; everything above it — DAG model, partial matching, classads,
// bidding, cloning, VNET-style overlay networking — is implemented in
// full. See DESIGN.md for the substitution table and EXPERIMENTS.md for
// the reproduced figures.
//
// Quick start:
//
//	sys, _ := vmplants.New(vmplants.Config{Plants: 4, Seed: 1})
//	sys.PublishGolden("base", vmplants.Hardware{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
//	    vmplants.BackendVMware, history)
//	id, ad, _ := sys.CreateVM(spec)
//	fmt.Println(ad.GetString("IP", ""))
package vmplants

import (
	"errors"
	"fmt"
	"time"

	"vmplants/internal/classad"
	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/cost"
	"vmplants/internal/dag"
	"vmplants/internal/plant"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/vdisk"
	"vmplants/internal/warehouse"
)

// Re-exported domain types, so library users need only this package.
type (
	// VMID identifies a virtual machine instance.
	VMID = core.VMID
	// Hardware is a VM hardware specification.
	Hardware = core.HardwareSpec
	// Spec is a complete VM creation request.
	Spec = core.Spec
	// Ad is a classad (attribute,value record with expressions).
	Ad = classad.Ad
	// Graph is a configuration DAG.
	Graph = dag.Graph
	// Action is one configuration operation.
	Action = dag.Action
	// ErrorPolicy is a DAG node's error handling declaration.
	ErrorPolicy = dag.ErrorPolicy
	// GraphBuilder assembles configuration DAGs.
	GraphBuilder = dag.Builder
)

// Production-line backends.
const (
	BackendVMware = warehouse.BackendVMware
	BackendUML    = warehouse.BackendUML
)

// Action targets.
const (
	Guest = dag.Guest
	Host  = dag.Host
)

// NewGraph returns a configuration DAG builder.
func NewGraph() *GraphBuilder { return dag.NewBuilder() }

// Config assembles a System.
type Config struct {
	// Plants is the number of cluster nodes, one VMPlant each
	// (default 4; the paper's testbed used 8).
	Plants int
	// Seed makes the whole system deterministic.
	Seed int64
	// CostModel is "free-memory" (prototype default) or
	// "network+compute" (the §3.4 model).
	CostModel string
	// MaxVMsPerPlant caps each plant (0 = unlimited).
	MaxVMsPerPlant int
	// HostOnlyNetworksPerPlant is the vmnet pool size (default 4).
	HostOnlyNetworksPerPlant int
	// CloneByCopy replaces link cloning with full disk copies.
	CloneByCopy bool
	// FailProb injects per-operation configuration failures.
	FailProb map[string]float64
}

// System is an in-process VMPlants deployment: a simulated cluster, a
// warehouse, plants, and a shop. All operations advance a virtual
// clock; Now reports it.
type System struct {
	kernel *sim.Kernel
	tb     *cluster.Testbed
	wh     *warehouse.Warehouse
	plants []*plant.Plant
	shop   *shop.Shop
}

// New builds a system.
func New(cfg Config) (*System, error) {
	if cfg.Plants <= 0 {
		cfg.Plants = 4
	}
	model, err := cost.ByName(cfg.CostModel)
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	tb := cluster.NewTestbed(k, cfg.Plants, cluster.DefaultParams(), cfg.Seed)
	wh := warehouse.New(tb.Warehouse)
	mode := vdisk.CloneByLink
	if cfg.CloneByCopy {
		mode = vdisk.CloneByCopy
	}
	s := &System{kernel: k, tb: tb, wh: wh}
	var handles []shop.PlantHandle
	for _, node := range tb.Nodes {
		pl := plant.New(node.Name(), node, wh, plant.Config{
			MaxVMs:           cfg.MaxVMsPerPlant,
			HostOnlyNetworks: cfg.HostOnlyNetworksPerPlant,
			CostModel:        model,
			CloneMode:        mode,
			FailProb:         cfg.FailProb,
		})
		s.plants = append(s.plants, pl)
		handles = append(handles, shop.NewLocalHandle(pl))
	}
	s.shop = shop.New("shop", handles, cfg.Seed+1)
	return s, nil
}

// Now reports the system's virtual time.
func (s *System) Now() time.Duration { return s.kernel.Now() }

// Plants lists plant names.
func (s *System) Plants() []string {
	out := make([]string, len(s.plants))
	for i, pl := range s.plants {
		out[i] = pl.Name()
	}
	return out
}

// GoldenImages lists published golden image names.
func (s *System) GoldenImages() []string { return s.wh.List() }

// PublishGolden builds and publishes a golden image whose configuration
// history is the given action sequence (executed from a blank machine).
func (s *System) PublishGolden(name string, hw Hardware, backend string, history []Action) error {
	im, err := warehouse.BuildGolden(name, hw, backend, history)
	if err != nil {
		return err
	}
	return s.wh.Publish(im)
}

// do runs body as a client process and drives the simulation to
// quiescence.
func (s *System) do(name string, body func(p *sim.Proc)) error {
	s.kernel.Spawn(name, body)
	res := s.kernel.Run(0)
	if len(res.Stranded) != 0 {
		return fmt.Errorf("vmplants: stranded processes: %v", res.Stranded)
	}
	return nil
}

// CreateVM submits a creation request through the shop and returns the
// assigned VMID and the resulting classad.
func (s *System) CreateVM(spec *Spec) (VMID, *Ad, error) {
	var (
		id  VMID
		ad  *Ad
		err error
	)
	if derr := s.do("client-create", func(p *sim.Proc) {
		id, ad, err = s.shop.Create(p, spec)
	}); derr != nil {
		return "", nil, derr
	}
	return id, ad, err
}

// QueryVM fetches an active VM's classad.
func (s *System) QueryVM(id VMID) (*Ad, error) {
	var (
		ad  *Ad
		err error
	)
	if derr := s.do("client-query", func(p *sim.Proc) {
		ad, err = s.shop.Query(p, id)
	}); derr != nil {
		return nil, derr
	}
	return ad, err
}

// DestroyVM collects an active VM.
func (s *System) DestroyVM(id VMID) error {
	var err error
	if derr := s.do("client-destroy", func(p *sim.Proc) {
		err = s.shop.Destroy(p, id)
	}); derr != nil {
		return derr
	}
	return err
}

// PublishVM checkpoints an active VM and publishes it to the warehouse
// as a new golden image named image — the installer workflow: configure
// a workspace once, publish it, and subsequent requests whose DAGs
// extend its configuration clone it instead of repeating the work.
func (s *System) PublishVM(id VMID, image string) error {
	var err error
	if derr := s.do("client-publish", func(p *sim.Proc) {
		err = s.shop.Publish(p, id, image)
	}); derr != nil {
		return derr
	}
	return err
}

// SuspendVM parks an active VM: its memory image is checkpointed and
// host memory freed — how In-VIGO parks idle virtual workspaces.
func (s *System) SuspendVM(id VMID) error {
	var err error
	if derr := s.do("client-suspend", func(p *sim.Proc) {
		err = s.shop.Suspend(p, id)
	}); derr != nil {
		return derr
	}
	return err
}

// ResumeVM brings a suspended VM back to running.
func (s *System) ResumeVM(id VMID) error {
	var err error
	if derr := s.do("client-resume", func(p *sim.Proc) {
		err = s.shop.Resume(p, id)
	}); derr != nil {
		return derr
	}
	return err
}

// findPlant resolves a plant by name.
func (s *System) findPlant(name string) (*plant.Plant, error) {
	for _, pl := range s.plants {
		if pl.Name() == name {
			return pl, nil
		}
	}
	return nil, fmt.Errorf("vmplants: no plant %q", name)
}

// MigrateVM moves an active VM to the named plant: suspend, stream the
// private state over the cluster interconnect, resume on the
// destination (the paper's §6 "migration of active VMs across plants").
func (s *System) MigrateVM(id VMID, toPlant string) error {
	dst, err := s.findPlant(toPlant)
	if err != nil {
		return err
	}
	var src *plant.Plant
	for _, pl := range s.plants {
		if _, ok := pl.VM(id); ok {
			src = pl
			break
		}
	}
	if src == nil {
		return fmt.Errorf("vmplants: no plant hosts VM %s", id)
	}
	var merr error
	if derr := s.do("client-migrate", func(p *sim.Proc) {
		merr = src.MigrateTo(p, id, dst)
	}); derr != nil {
		return derr
	}
	return merr
}

// Precreate speculatively clones the named golden image count times on
// the named plant, parking the clones suspended so later matching
// requests resume them instead of paying the state copy (the paper's
// §4.3 latency-hiding optimization).
func (s *System) Precreate(plantName, image string, count int) error {
	pl, err := s.findPlant(plantName)
	if err != nil {
		return err
	}
	var perr error
	if derr := s.do("client-precreate", func(p *sim.Proc) {
		perr = pl.Precreate(p, image, count)
	}); derr != nil {
		return derr
	}
	return perr
}

// Advance moves virtual time forward by d with no client activity
// (monitor processes and timeouts still run).
func (s *System) Advance(d time.Duration) error {
	return s.do("advance", func(p *sim.Proc) { p.Sleep(d) })
}

// Bids returns the shop's bidding audit log.
func (s *System) Bids() []shop.BidRecord { return s.shop.Bids() }

// PlantOf reports which plant hosts a VM, from the shop's routing view.
func (s *System) PlantOf(id VMID) (string, error) {
	if name := s.shop.RouteOf(id); name != "" {
		return name, nil
	}
	return "", errors.New("vmplants: unknown VM")
}

// GuestProbe sends an Ethernet-layer echo probe to a VM on its
// host-only network and reports whether the guest answered — the
// smallest possible end-to-end liveness check.
func (s *System) GuestProbe(id VMID) (bool, error) {
	var answered bool
	found := false
	for _, pl := range s.plants {
		vm, ok := pl.VM(id)
		if !ok {
			continue
		}
		found = true
		probe := vm.Network().Switch.Attach("probe")
		probe.Send(probeFrame(vm.MAC()))
		_, answered = probe.Poll()
		probe.Close()
		break
	}
	if !found {
		return false, fmt.Errorf("vmplants: no plant hosts VM %s", id)
	}
	return answered, nil
}
