package vmplants

import (
	"strings"
	"testing"
	"time"
)

// history is a minimal golden configuration: OS plus one package.
func history() []Action {
	return []Action{
		{Op: "install-os", Target: Guest, Params: map[string]string{"distro": "redhat-8.0"}},
		{Op: "install-package", Target: Guest, Params: map[string]string{"name": "vnc-server"}},
	}
}

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.Plants == 0 {
		cfg.Plants = 2
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hw := Hardware{Arch: "x86", MemoryMB: 64, DiskMB: 2048}
	if err := sys.PublishGolden("base-ws", hw, BackendVMware, history()); err != nil {
		t.Fatal(err)
	}
	return sys
}

func wsSpec(t *testing.T, user string) *Spec {
	t.Helper()
	g, err := NewGraph().
		Add("os", Action{Op: "install-os", Target: Guest, Params: map[string]string{"distro": "redhat-8.0"}}).
		Add("vnc", Action{Op: "install-package", Target: Guest, Params: map[string]string{"name": "vnc-server"}}, "os").
		Add("net", Action{Op: "configure-network", Target: Guest, Params: map[string]string{"ip": "10.2.0.5"}}, "vnc").
		Add("user", Action{Op: "create-user", Target: Guest, Params: map[string]string{"name": user}}, "net").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{
		Name:     "ws-" + user,
		Hardware: Hardware{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		Domain:   "example.edu",
		Graph:    g,
	}
}

func TestEndToEndLifecycle(t *testing.T) {
	sys := newSystem(t, Config{Seed: 1})
	id, ad, err := sys.CreateVM(wsSpec(t, "alice"))
	if err != nil {
		t.Fatal(err)
	}
	if ad.GetString("IP", "") != "10.2.0.5" {
		t.Errorf("IP = %q", ad.GetString("IP", ""))
	}
	if sys.Now() <= 0 {
		t.Error("virtual clock did not advance")
	}
	// The guest is alive on its host-only network.
	alive, err := sys.GuestProbe(id)
	if err != nil || !alive {
		t.Errorf("probe: alive=%v err=%v", alive, err)
	}
	// Query sees uptime grow.
	if err := sys.Advance(time.Minute); err != nil {
		t.Fatal(err)
	}
	ad2, err := sys.QueryVM(id)
	if err != nil {
		t.Fatal(err)
	}
	if ad2.GetInt("UptimeSecs", -1) < 60 {
		t.Errorf("uptime = %d", ad2.GetInt("UptimeSecs", -1))
	}
	if err := sys.DestroyVM(id); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.QueryVM(id); err == nil {
		t.Error("destroyed VM still queryable")
	}
	if _, err := sys.GuestProbe(id); err == nil {
		t.Error("destroyed VM still probeable")
	}
}

func TestCreateIsWithinPaperEnvelope(t *testing.T) {
	sys := newSystem(t, Config{Seed: 2})
	before := sys.Now()
	if _, _, err := sys.CreateVM(wsSpec(t, "bob")); err != nil {
		t.Fatal(err)
	}
	took := sys.Now() - before
	if took < 10*time.Second || took > 100*time.Second {
		t.Errorf("creation took %v, want within the paper's 17–85 s envelope", took)
	}
}

func TestBidsRecorded(t *testing.T) {
	sys := newSystem(t, Config{Seed: 3, CostModel: "network+compute", MaxVMsPerPlant: 32})
	if _, _, err := sys.CreateVM(wsSpec(t, "carol")); err != nil {
		t.Fatal(err)
	}
	bids := sys.Bids()
	if len(bids) != 1 || len(bids[0].Costs) != 2 {
		t.Fatalf("bids = %+v", bids)
	}
}

func TestPlantOf(t *testing.T) {
	sys := newSystem(t, Config{Seed: 4})
	id, _, err := sys.CreateVM(wsSpec(t, "dave"))
	if err != nil {
		t.Fatal(err)
	}
	name, err := sys.PlantOf(id)
	if err != nil || !strings.HasPrefix(name, "node") {
		t.Errorf("PlantOf = %q, %v", name, err)
	}
	if _, err := sys.PlantOf("vm-shop-999"); err == nil {
		t.Error("unknown VM resolved")
	}
}

func TestCreateWithoutGoldenFails(t *testing.T) {
	sys, err := New(Config{Plants: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.CreateVM(wsSpec(t, "erin")); err == nil {
		t.Error("create without any golden image succeeded")
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	sys := newSystem(t, Config{Seed: 6})
	s := wsSpec(t, "frank")
	s.Domain = ""
	if _, _, err := sys.CreateVM(s); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestFailureInjectionThroughFacade(t *testing.T) {
	sys, err := New(Config{Plants: 1, Seed: 7, FailProb: map[string]float64{"create-user": 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	hw := Hardware{Arch: "x86", MemoryMB: 64, DiskMB: 2048}
	if err := sys.PublishGolden("base-ws", hw, BackendVMware, history()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.CreateVM(wsSpec(t, "grace")); err == nil {
		t.Error("create with certain failure succeeded")
	}
}

func TestDeterministicReplayThroughFacade(t *testing.T) {
	run := func() time.Duration {
		sys := newSystem(t, Config{Seed: 99})
		if _, _, err := sys.CreateVM(wsSpec(t, "heidi")); err != nil {
			t.Fatal(err)
		}
		return sys.Now()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay diverged: %v vs %v", a, b)
	}
}

func TestUnknownCostModelRejected(t *testing.T) {
	if _, err := New(Config{CostModel: "tarot"}); err == nil {
		t.Error("unknown cost model accepted")
	}
}

func TestMigrateVMThroughFacade(t *testing.T) {
	sys := newSystem(t, Config{Seed: 21, Plants: 2})
	id, _, err := sys.CreateVM(wsSpec(t, "mallory"))
	if err != nil {
		t.Fatal(err)
	}
	src, _ := sys.PlantOf(id)
	var dst string
	for _, name := range sys.Plants() {
		if name != src {
			dst = name
		}
	}
	if err := sys.MigrateVM(id, dst); err != nil {
		t.Fatal(err)
	}
	// The shop's soft route is stale; Query heals it and sees the VM on
	// the destination.
	ad, err := sys.QueryVM(id)
	if err != nil {
		t.Fatal(err)
	}
	if ad.GetString("Plant", "") != dst {
		t.Errorf("migrated VM on %q, want %q", ad.GetString("Plant", ""), dst)
	}
	if alive, err := sys.GuestProbe(id); err != nil || !alive {
		t.Errorf("guest dead after migration: alive=%v err=%v", alive, err)
	}
	if err := sys.MigrateVM("vm-ghost", dst); err == nil {
		t.Error("migrate of unknown VM succeeded")
	}
	if err := sys.MigrateVM(id, "plant-x"); err == nil {
		t.Error("migrate to unknown plant succeeded")
	}
}

func TestPublishAndPrecreateThroughFacade(t *testing.T) {
	sys := newSystem(t, Config{Seed: 22, Plants: 1})
	id, _, err := sys.CreateVM(wsSpec(t, "peggy"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.PublishVM(id, "peggy-image"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, im := range sys.GoldenImages() {
		if im == "peggy-image" {
			found = true
		}
	}
	if !found {
		t.Errorf("published image missing: %v", sys.GoldenImages())
	}
	if err := sys.Precreate(sys.Plants()[0], "peggy-image", 1); err != nil {
		t.Fatal(err)
	}
	// A re-creation of peggy's workspace is served from the pool, fast.
	before := sys.Now()
	if _, _, err := sys.CreateVM(wsSpec(t, "peggy")); err != nil {
		t.Fatal(err)
	}
	if took := sys.Now() - before; took > 15*time.Second {
		t.Errorf("pool-served create took %v", took)
	}
	if err := sys.Precreate("plant-x", "peggy-image", 1); err == nil {
		t.Error("precreate on unknown plant succeeded")
	}
}

func TestRequirementsThroughFacade(t *testing.T) {
	sys := newSystem(t, Config{Seed: 30, Plants: 3})
	want := sys.Plants()[2]
	s := wsSpec(t, "judy")
	s.Requirements = `TARGET.Plant == "` + want + `"`
	id, ad, err := sys.CreateVM(s)
	if err != nil {
		t.Fatal(err)
	}
	if ad.GetString("Plant", "") != want {
		t.Errorf("created on %q, want %q", ad.GetString("Plant", ""), want)
	}
	_ = id
}

func TestSuspendResumeLifecycle(t *testing.T) {
	sys := newSystem(t, Config{Seed: 33, Plants: 1})
	id, _, err := sys.CreateVM(wsSpec(t, "victor"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SuspendVM(id); err != nil {
		t.Fatal(err)
	}
	ad, err := sys.QueryVM(id)
	if err != nil {
		t.Fatal(err)
	}
	if ad.GetString("State", "") != "suspended" {
		t.Errorf("state = %q", ad.GetString("State", ""))
	}
	// A suspended guest does not answer probes.
	if alive, _ := sys.GuestProbe(id); alive {
		t.Error("suspended guest answered probe")
	}
	// Double suspend is an error.
	if err := sys.SuspendVM(id); err == nil {
		t.Error("double suspend succeeded")
	}
	if err := sys.ResumeVM(id); err != nil {
		t.Fatal(err)
	}
	ad2, _ := sys.QueryVM(id)
	if ad2.GetString("State", "") != "running" {
		t.Errorf("state after resume = %q", ad2.GetString("State", ""))
	}
	if alive, _ := sys.GuestProbe(id); !alive {
		t.Error("resumed guest silent")
	}
	// Suspended VMs free host memory: a full plant can take another VM
	// while one is parked. (MaxVMs still counts it; memory does not.)
	if err := sys.DestroyVM(id); err != nil {
		t.Fatal(err)
	}
}
